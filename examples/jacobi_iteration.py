#!/usr/bin/env python3
"""Iterative Jacobi relaxation with ghost-region (overlap) execution.

Runs K sweeps of the 5-point Jacobi stencil on a BLOCK x BLOCK grid
through the Session API — the sweep is recorded once as a loop and
lowered through the program IR — comparing naive per-reference
communication with SUPERB-style halo exchanges, and tracks numeric
convergence against the sequential semantics (they are identical by
construction — the simulator validates numerics against the reference
executor).

Run:  python examples/jacobi_iteration.py [N] [iterations]
"""

import sys

import numpy as np

from repro import MachineConfig, Session
from repro.bench.harness import format_table
from repro.distributions import Block
from repro.machine.backend import BackendConfig


def main(n: int = 128, iterations: int = 20) -> None:
    config = MachineConfig(16)
    results = {}
    for mode, use_overlap in (("naive", False), ("halo", True)):
        s = Session(16, machine=config,
                    backend=BackendConfig(use_overlap=use_overlap))
        pr = s.processors("PR", 4, 4)
        x = s.array("X", n, n).distribute(Block(), Block(), to=pr)
        xnew = s.array("XNEW", n, n).distribute(Block(), Block(), to=pr)
        # hot boundary, cold interior
        x.data[:] = 0.0
        x.data[0, :] = 100.0
        xnew.data[:] = x.data

        def sweep():
            xnew[1:-1, 1:-1] = 0.25 * (x[:-2, 1:-1] + x[2:, 1:-1]
                                       + x[1:-1, :-2] + x[1:-1, 2:])
            x[1:-1, 1:-1] = xnew[1:-1, 1:-1]

        # all but the last sweep in one recorded loop ...
        with s.loop(iterations - 1):
            sweep()
        s.run()
        before = x.data.copy()
        # ... the last one separately, to measure the final residual
        sweep()
        s.run()
        residual = float(np.abs(x.data - before).max())
        results[mode] = (s.machine, residual, x.data.copy())

    naive_m, naive_res, naive_x = results["naive"]
    halo_m, halo_res, halo_x = results["halo"]
    assert np.array_equal(naive_x, halo_x), "numerics must be identical"

    table = [{
        "mode": mode,
        "messages": m.stats.total_messages,
        "words": m.stats.total_words,
        "est_time": f"{m.stats.estimated_time(config):.0f}",
        "final_residual": f"{res:.4f}",
    } for mode, (m, res, _) in results.items()]
    print(f"Jacobi {n}x{n}, {iterations} sweeps, 4x4 processors")
    print(format_table(table))
    print()
    print("halo mode exchanges full boundary strips once per sweep; the")
    print("alpha-beta machine rewards the fewer, larger messages.")
    print(f"temperature at centre after {iterations} sweeps: "
          f"{naive_x[n // 2, n // 2]:.6f}")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    iters = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    main(n, iters)
