#!/usr/bin/env python3
"""GENERAL_BLOCK load balancing (§4.1.2) on irregular workloads.

Equal-size BLOCKs are the wrong partition when per-row work varies; the
paper generalizes HPF with GENERAL_BLOCK exactly for this.  This example
balances three cost profiles and executes a weighted relaxation sweep on
the simulated machine to show the makespan difference.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro.bench.harness import format_table
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.general_block import GeneralBlock
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.metrics import CommStats
from repro.workloads.irregular import (
    imbalance_of_partition,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)


def makespan(costs: np.ndarray, owners: np.ndarray, np_: int,
             config: MachineConfig) -> float:
    stats = CommStats(np_)
    work = np.bincount(owners, weights=costs, minlength=np_)
    stats.local_ops += work.astype(np.int64)
    return stats.estimated_time(config)


def main() -> None:
    n, np_ = 8192, 16
    config = MachineConfig(np_)
    dim = Triplet(1, n)
    profiles = {
        "triangular": triangular_costs(n),
        "power_law(2)": power_law_costs(n, 2.0),
        "stepped(10%x50)": stepped_costs(n, 0.1, 50.0, seed=11),
    }
    table = []
    for label, costs in profiles.items():
        block = Block().bind(dim, np_)
        gb = GeneralBlock.balanced_for_costs(costs, np_).bind(dim, np_)
        ob = block.owner_coord_array(dim.values())
        og = gb.owner_coord_array(dim.values())
        imb_b, _ = imbalance_of_partition(costs, ob, np_)
        imb_g, _ = imbalance_of_partition(costs, og, np_)
        table.append({
            "profile": label,
            "BLOCK imbalance": f"{imb_b:.3f}",
            "GENERAL_BLOCK imbalance": f"{imb_g:.3f}",
            "makespan speedup": f"{makespan(costs, ob, np_, config) / makespan(costs, og, np_, config):.2f}x",
        })
    print(f"N={n}, P={np_}: max/mean work per processor")
    print(format_table(table))
    print()
    # show the actual directive a user would write
    costs = triangular_costs(n)
    g = GeneralBlock.balanced_for_costs(costs, np_)
    print("the balanced directive for the triangular profile:")
    print(f"!HPF$ DISTRIBUTE A(GENERAL_BLOCK(({', '.join(map(str, g.bounds[:6]))}, ...)))")

    # and confirm it round-trips through the front end
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.distribute("A", [g], to="PR")
    extents = [ds.distribution_of("A").local_extent(u)
               for u in range(np_)]
    print(f"block extents (elements): min={min(extents)} "
          f"max={max(extents)} — small blocks where rows are heavy")


if __name__ == "__main__":
    main()
