#!/usr/bin/env python3
"""Self-adaptive load balancing: ``Session(opt="auto")`` (§4.1.2).

Equal-size BLOCKs are the wrong partition when per-row work varies; the
paper generalizes HPF with GENERAL_BLOCK exactly for this.  The manual
fix — hand-computing ``GeneralBlock.balanced_for_costs`` bounds — is
kept below as the baseline column; the point of this example is that
``opt="auto"`` closes the loop itself: declare the per-row cost profile,
run, and the session measures the work, prices a balanced GENERAL_BLOCK
re-partition against the exact remap cost, and emits the REDISTRIBUTE
mid-run — with bit-identical numerics and the action reported honestly
on ``result.adaptations``.

Run:  python examples/load_balancing.py
      python -m repro tune examples/load_balancing.py   # report only
"""

import numpy as np

from repro import MachineConfig, Session
from repro.bench.harness import format_table
from repro.distributions import Block, GeneralBlock
from repro.machine.metrics import CommStats
from repro.workloads.irregular import (
    imbalance_of_partition,
    imbalanced_jacobi_session,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)


def makespan(costs: np.ndarray, owners: np.ndarray, np_: int,
             config: MachineConfig) -> float:
    stats = CommStats(np_)
    work = np.bincount(owners, weights=costs, minlength=np_)
    stats.local_ops += work.astype(np.int64)
    return stats.estimated_time(config)


def manual_table(n: int, np_: int) -> None:
    """The baseline: the user hand-picks the balanced bounds."""
    config = MachineConfig(np_)
    profiles = {
        "triangular": triangular_costs(n),
        "power_law(2)": power_law_costs(n, 2.0),
        "stepped(10%x50)": stepped_costs(n, 0.1, 50.0, seed=11),
    }
    s = Session(np_, machine=False)
    pr = s.processors("PR", np_)
    table = []
    for k, (label, costs) in enumerate(profiles.items()):
        blocked = s.array(f"WB{k}", n).distribute(Block(), to=pr)
        balanced = s.array(f"WG{k}", n).distribute(
            GeneralBlock.balanced_for_costs(costs, np_), to=pr)
        ob = s.ds.owner_map(blocked.name)
        og = s.ds.owner_map(balanced.name)
        imb_b, _ = imbalance_of_partition(costs, ob, np_)
        imb_g, _ = imbalance_of_partition(costs, og, np_)
        speedup = makespan(costs, ob, np_, config) \
            / makespan(costs, og, np_, config)
        table.append({
            "profile": label,
            "BLOCK imbalance": f"{imb_b:.3f}",
            "GENERAL_BLOCK imbalance": f"{imb_g:.3f}",
            "makespan speedup": f"{speedup:.2f}x",
        })
    print(f"manual baseline — N={n}, P={np_}: max/mean work per "
          "processor")
    print(format_table(table))


def main() -> None:
    manual_table(8192, 16)
    print()

    # the auto demo: same skew, but the session adapts itself
    n, np_, iters = 64, 8, 12
    s = imbalanced_jacobi_session(n, np_, iters, exponent=2.0,
                                  opt="auto")
    print(f"opt='auto' — N={n}x{n}, P={np_}, {iters} trips, "
          "power_law(2) row costs declared via X.cost_profile(...):")
    print("  " + s.describe().splitlines()[-1])
    result = s.run()
    if result is None:      # `repro tune` drives this script report-only
        return
    for adaptation in result.adaptations:
        print("  " + adaptation.describe())
        prop = adaptation.proposal
        print(f"  modeled per-trip makespan: {prop.makespan_before:.1f} "
              f"-> {prop.makespan_after:.1f} "
              f"({prop.improvement:.0%} better); imbalance "
              f"{prop.imbalance_before:.2f} -> "
              f"{prop.imbalance_after:.2f}")
    if not result.adaptations:
        print("  (no adaptation: the modeled gain never cleared the "
              "remap cost)")
    dist = s.ds.distribution_of("X")
    print(f"  final layout of X: {dist.formats[0]}")


if __name__ == "__main__":
    main()
