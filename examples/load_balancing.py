#!/usr/bin/env python3
"""GENERAL_BLOCK load balancing (§4.1.2) on irregular workloads.

Equal-size BLOCKs are the wrong partition when per-row work varies; the
paper generalizes HPF with GENERAL_BLOCK exactly for this.  This example
balances three cost profiles — each pair of mappings is declared through
the Session API and the resulting ownership read back from the scope —
and compares the makespan of a weighted relaxation sweep under the
machine's cost model.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import MachineConfig, Session
from repro.bench.harness import format_table
from repro.distributions import Block, GeneralBlock
from repro.machine.metrics import CommStats
from repro.workloads.irregular import (
    imbalance_of_partition,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)


def makespan(costs: np.ndarray, owners: np.ndarray, np_: int,
             config: MachineConfig) -> float:
    stats = CommStats(np_)
    work = np.bincount(owners, weights=costs, minlength=np_)
    stats.local_ops += work.astype(np.int64)
    return stats.estimated_time(config)


def main() -> None:
    n, np_ = 8192, 16
    config = MachineConfig(np_)
    profiles = {
        "triangular": triangular_costs(n),
        "power_law(2)": power_law_costs(n, 2.0),
        "stepped(10%x50)": stepped_costs(n, 0.1, 50.0, seed=11),
    }
    s = Session(np_, machine=False)
    pr = s.processors("PR", np_)
    table = []
    for k, (label, costs) in enumerate(profiles.items()):
        blocked = s.array(f"WB{k}", n).distribute(Block(), to=pr)
        balanced = s.array(f"WG{k}", n).distribute(
            GeneralBlock.balanced_for_costs(costs, np_), to=pr)
        ob = s.ds.owner_map(blocked.name)
        og = s.ds.owner_map(balanced.name)
        imb_b, _ = imbalance_of_partition(costs, ob, np_)
        imb_g, _ = imbalance_of_partition(costs, og, np_)
        speedup = makespan(costs, ob, np_, config) \
            / makespan(costs, og, np_, config)
        table.append({
            "profile": label,
            "BLOCK imbalance": f"{imb_b:.3f}",
            "GENERAL_BLOCK imbalance": f"{imb_g:.3f}",
            "makespan speedup": f"{speedup:.2f}x",
        })
    print(f"N={n}, P={np_}: max/mean work per processor")
    print(format_table(table))
    print()
    # show the actual directive a user would write
    costs = triangular_costs(n)
    g = GeneralBlock.balanced_for_costs(costs, np_)
    print("the balanced directive for the triangular profile:")
    print(f"!HPF$ DISTRIBUTE A(GENERAL_BLOCK(({', '.join(map(str, g.bounds[:6]))}, ...)))")

    # and confirm it round-trips through the front end
    a = s.array("A", n).distribute(g, to=pr)
    extents = [a.distribution().local_extent(u) for u in range(np_)]
    print(f"block extents (elements): min={min(extents)} "
          f"max={max(extents)} — small blocks where rows are heavy")


if __name__ == "__main__":
    main()
