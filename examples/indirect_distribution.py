#!/usr/bin/env python3
"""User-defined (INDIRECT) distributions — closing the §8.1.2 gap.

The paper observes that draft HPF "cannot describe explicitly every
distribution that it can actually generate" — the inherited distribution
of a strided section being the running example — whereas Kali and Vienna
Fortran have user-defined distribution functions.  This example opens a
Session and uses the library's INDIRECT extension to:

1. capture the inherited mapping of A(2:996:2) (CYCLIC(3) parent) and
   re-declare it *explicitly* on a fresh array;
2. build a graph-partition-style mapping no standard format expresses
   (greedy bisection of a 1-D chain with irregular weights);
3. run a weighted relaxation under it and compare load balance with
   BLOCK.

Run:  python examples/indirect_distribution.py
"""

import numpy as np

from repro import Session
from repro.bench.harness import format_table
from repro.core.procedures import InheritedSectionDistribution
from repro.distributions import Block, Cyclic, GeneralBlock
from repro.distributions.indirect import Indirect, UserDefined
from repro.fortran.triplet import Triplet
from repro.workloads.irregular import (
    imbalance_of_partition,
    lpt_partition,
    stepped_costs,
)


def main() -> None:
    np_ = 8
    s = Session(np_, machine=False)
    pr = s.processors("PR", np_)

    # 1. the §8.1.2 mapping, made explicit ---------------------------
    a = s.array("A", 1000).distribute(Cyclic(3), to=pr)
    sec = s.ds.section("A", Triplet(2, 996, 2))
    inherited = InheritedSectionDistribution(a.distribution(), sec)
    mapping = inherited.primary_owner_map()
    x = s.array("X", 498).distribute(Indirect(mapping), to=pr)
    same = bool(np.array_equal(s.ds.owner_map(x.name), mapping))
    print("inherited mapping of A(2:996:2) re-declared as INDIRECT:",
          "identical" if same else "DIFFERENT")

    # 2. a mapping outside every standard format ----------------------
    # zig-zag ("boustrophedon") blocks: consecutive blocks alternate
    # direction so each processor gets two far-apart chain segments —
    # a shape neither BLOCK, CYCLIC(k) nor GENERAL_BLOCK can express
    n = 4096
    zigzag = UserDefined(
        lambda i: ((i - 1) * 2 * np_ // n) % (2 * np_) if
        ((i - 1) * 2 * np_ // n) < np_ else
        2 * np_ - 1 - ((i - 1) * 2 * np_ // n),
        name="zigzag")
    w = s.array("W", n).distribute(zigzag, to=pr)
    extents = [w.distribution().local_extent(u) for u in range(np_)]
    print(f"zig-zag mapping: per-processor extents {extents}")

    # 3. irregular weights: INDIRECT from a greedy weighted partition --
    costs = stepped_costs(n, 0.05, 80.0, seed=42)
    owner = lpt_partition(costs, np_)        # heaviest-first greedy
    s.array("V", n).distribute(Indirect(owner), to=pr)

    rows = []
    for label, fmt in (("BLOCK", Block()),
                       ("GENERAL_BLOCK(balanced)",
                        GeneralBlock.balanced_for_costs(costs, np_)),
                       ("INDIRECT(LPT greedy)", Indirect(owner))):
        dd = fmt.bind(Triplet(1, n), np_)
        owners = dd.owner_coord_array(Triplet(1, n).values())
        imb, _ = imbalance_of_partition(costs, owners, np_)
        rows.append({"mapping": label,
                     "max/mean work": f"{imb:.4f}"})
    print()
    print(f"stepped costs (5% of rows are 80x heavier), N={n}, P={np_}:")
    print(format_table(rows))
    print()
    print("GENERAL_BLOCK balances contiguous blocks (the paper's tool);")
    print("INDIRECT can break contiguity for arbitrarily skewed work —")
    print("the user-defined generality the paper credits Kali/Vienna "
          "Fortran with.")


if __name__ == "__main__":
    main()
