#!/usr/bin/env python3
"""Passing array sections to procedures (§8.1.2) — three ways to map the
dummy, identical ownership, very different costs.

The paper's example: A(1000) distributed CYCLIC(3), and the call
``CALL SUB(A(2:996:2))``.  How can SUB's dummy X be mapped?

1. inheritance (``DISTRIBUTE X *``)  — free;
2. draft HPF's template spec (TEMPLATE T(1000); ALIGN X(I) WITH T(2*I);
   DISTRIBUTE T(CYCLIC(3))) — names the same mapping, but costs the
   subroutine its generality;
3. the paper's template-free alternative: pass A too and
   ``ALIGN X(I) WITH A(2*I)`` with A's distribution inherited.

Run:  python examples/section_arguments.py
"""

import numpy as np

from repro import Session
from repro.bench.harness import format_table
from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.distributions.cyclic import Cyclic
from repro.engine.redistribute import price_remap
from repro.fortran.triplet import Triplet
from repro.templates.inherit import inherit_mapping
from repro.templates.model import TemplateDataSpace
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr


def main() -> None:
    np_ = 4
    # the caller of the paper's example, as a Session scope
    caller = Session(np_, machine=False)
    caller.array("A", 1000).distribute(
        Cyclic(3), to=caller.processors("PR", np_))
    ds = caller.ds
    section = (Triplet(2, 996, 2),)

    # 1. inheritance
    seen = {}

    def body(frame, x):
        seen["dist"] = frame.distribution_of("X")

    proc = Procedure("SUB", [DummySpec("X", DummyMode.INHERIT)], body)
    proc.call(ds, ("A", section))
    inherited_map = seen["dist"].primary_owner_map()

    # 2. the template spec of draft HPF
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.template("T", 1000)
    tds.declare("X", 498)
    tds.align(AlignSpec("X", [AxisDummy("I")], "T",
                        [BaseExpr(2 * Dummy("I"))]))
    tds.distribute("T", [Cyclic(3)], to="PR")
    template_map = tds.owner_map("X")

    # 3. the paper's template-free alternative, fluently
    s3 = Session(np_, machine=False)
    a3 = s3.array("A", 1000).distribute(
        Cyclic(3), to=s3.processors("PR", np_))
    x3 = s3.array("X", 498).align(a3, lambda I: 2 * I)
    paper_map = s3.ds.owner_map(x3.name)

    rows = [
        {"spec": "DISTRIBUTE X *  (inheritance)",
         "same ownership": "-", "entry remap words": 0},
        {"spec": "TEMPLATE T(1000) + ALIGN X(I) WITH T(2*I)",
         "same ownership": bool(np.array_equal(template_map,
                                               inherited_map)),
         "entry remap words": 0},
        {"spec": "ALIGN X(I) WITH A(2*I)  (no template)",
         "same ownership": bool(np.array_equal(paper_map,
                                               inherited_map)),
         "entry remap words": 0},
    ]

    # forcing an explicit (re)distribution on the dummy costs a remap
    proc2 = Procedure("SUB", [DummySpec(
        "X", DummyMode.EXPLICIT, formats=(Cyclic(3),), to="PR")],
        lambda frame, x: None)
    rec2 = proc2.call(ds, ("A", section))
    words = sum(price_remap(e, np_)[1] for e in rec2.entry_remaps)
    rows.append({"spec": "DISTRIBUTE X(CYCLIC(3))  (forced respec)",
                 "same ownership": False, "entry remap words": words})

    print("CALL SUB(A(2:996:2)) with A(1000) CYCLIC(3) over 4 procs")
    print(format_table(rows))
    print()
    print("All three declarative specs induce identical ownership of the")
    print("section; only re-specifying the dummy's own distribution moves")
    print("data. Inquiry on the inherited mapping:")
    print("  inherited X is", seen["dist"].describe())

    # the draft-HPF INHERIT surprise, demonstrated
    from repro.fortran.section import ArraySection
    tds2 = TemplateDataSpace(np_)
    tds2.processors("PR", np_)
    tds2.declare("A", 1000)
    tds2.distribute("A", [Cyclic(3)], to="PR")
    sec = ArraySection(tds2.arrays["A"].domain, section)
    inh = inherit_mapping(tds2, "A", sec)
    inh.check_star_distribution((Cyclic(3),))
    print()
    print("draft HPF's INHERIT: DISTRIBUTE X *(CYCLIC(3)) matches —")
    print("it describes the distribution of A, not of the section X "
          "received ('maximum surprise').")


if __name__ == "__main__":
    main()
