#!/usr/bin/env python3
"""Quickstart: the Session front door in ~15 lines.

1. open a Session (a scope over abstract processors + a cost machine),
2. declare arrays with fluent DISTRIBUTE/ALIGN directives,
3. record array statements with NumPy-flavored indexing (nothing runs),
4. run() — the program lowers through the IR and the accounting engine,
5. inspect ownership, locality and traffic.

Run:  python examples/quickstart.py
"""

from repro import Session
from repro.distributions import Block, Cyclic


def main() -> None:
    # --- the canonical snippet ----------------------------------------
    s = Session(8)                                  # scope + machine, P=8
    pr = s.processors("PR", 8)
    a = s.array("A", 64).distribute(Block(), to=pr)
    b = s.array("B", 32).align(a, lambda I: 2 * I)  # B(I) with A(2*I)
    a.data[:] = range(1, 65)
    b[:] = a[1::2] + 1.0                            # recorded, not run
    result = s.run()                                # lower -> IR -> run
    report = result.reports[-1]
    # ------------------------------------------------------------------

    print("-- mappings ------------------------------------------------")
    print(s.ds.describe())
    print()
    print("owners of A(10):", sorted(a.owners((10,))))
    print("owners of B(5): ", sorted(b.owners((5,))),
          " (same processor as A(10) — the CONSTRUCT guarantee)")
    print()
    print("-- execution -----------------------------------------------")
    print("statement:      ", report.statement)
    print("result B(1:5):  ", b.data[:5])
    print("locality:       ", f"{report.locality:.3f}",
          "(every operand collocated by the alignment)")
    print("words moved:    ", report.total_words)
    print("comm strategies:", report.strategies)

    # Dynamic remapping: REDISTRIBUTE A and watch B follow.
    s.dynamic(a)
    a.redistribute(Cyclic(), to=pr)                 # recorded
    s.run()                                         # executed
    event = s.ds.remap_events[-1]
    from repro.engine.redistribute import price_remap
    _, moved = price_remap(event, 8)
    print()
    print("-- after REDISTRIBUTE A(CYCLIC) ------------------------------")
    print("elements moved: ", moved)
    print("owners of A(10):", sorted(a.owners((10,))))
    print("owners of B(5): ", sorted(b.owners((5,))),
          " (B follows automatically: the alignment is invariant)")


if __name__ == "__main__":
    main()
