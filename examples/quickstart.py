#!/usr/bin/env python3
"""Quickstart: distribute, align, execute, measure.

This walks the paper's model end to end on a small program:

1. declare a processor arrangement and arrays,
2. distribute one array and align another to it,
3. run an array assignment under owner-computes on the simulated
   machine, and
4. inspect ownership, locality and traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    ArrayRef,
    Assignment,
    Block,
    Cyclic,
    DataSpace,
    DistributedMachine,
    MachineConfig,
    SimulatedExecutor,
    Triplet,
)
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr


def main() -> None:
    # A scope over 8 abstract processors with an arrangement PR(8).
    ds = DataSpace(8)
    ds.processors("PR", 8)

    # REAL A(64), B(32); DISTRIBUTE A(BLOCK) TO PR
    ds.declare("A", 64)
    ds.declare("B", 32)
    ds.distribute("A", [Block()], to="PR")

    # ALIGN B(I) WITH A(2*I): B(i) is guaranteed to live with A(2i).
    ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                       [BaseExpr(2 * Dummy("I"))]))

    print("-- mappings ------------------------------------------------")
    print(ds.describe())
    print()
    print("owners of A(10):", sorted(ds.owners("A", (10,))))
    print("owners of B(5): ", sorted(ds.owners("B", (5,))),
          " (same processor as A(10) — the CONSTRUCT guarantee)")
    print()

    # Execute B(1:32) = A(2:64:2) + 1 on the simulated machine.
    ds.arrays["A"].fill_sequence()
    machine = DistributedMachine(MachineConfig(8))
    executor = SimulatedExecutor(ds, machine)
    stmt = Assignment(ArrayRef("B"),
                      ArrayRef("A", (Triplet(2, 64, 2),)) + 1)
    report = executor.execute(stmt)

    print("-- execution -----------------------------------------------")
    print("statement:      ", stmt)
    print("result B(1:5):  ", ds.arrays["B"].data[:5])
    print("locality:       ", f"{report.locality:.3f}",
          "(every operand collocated by the alignment)")
    print("words moved:    ", report.total_words)
    print("comm strategies:", report.strategies)

    # Dynamic remapping: REDISTRIBUTE A and watch B follow.
    ds.set_dynamic("A")
    event = ds.redistribute("A", [Cyclic()], to="PR")
    from repro.engine.redistribute import price_remap
    matrix, moved = price_remap(event, 8)
    print()
    print("-- after REDISTRIBUTE A(CYCLIC) ------------------------------")
    print("elements moved: ", moved)
    print("owners of A(10):", sorted(ds.owners("A", (10,))))
    print("owners of B(5): ", sorted(ds.owners("B", (5,))),
          " (B follows automatically: the alignment is invariant)")


if __name__ == "__main__":
    main()
