#!/usr/bin/env python3
"""The §8.1.1 staggered grid (Thole example) under four mappings.

The paper's flagship example: a pressure/velocity staggered grid::

    REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
    P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)

Aligning the three arrays to a template T(0:2N,0:2N) and distributing it
(CYCLIC,CYCLIC) produces "the worst possible effect, viz. different
processor allocations for any two neighbors".  (BLOCK,BLOCK) — whether on
the template or specified directly, with no template at all — recovers
locality; GENERAL_BLOCK reproduces it with explicit irregular blocks.

Each strategy is built and executed through the Session front door: the
workload builder maps U/V/P with fluent directives, the update statement
is recorded lazily, and run() lowers it through the IR pipeline.

Run:  python examples/staggered_grid.py [N]
"""

import sys

from repro import MachineConfig, Session
from repro.bench.harness import format_table
from repro.workloads.stencil import staggered_grid_case


def main(n: int = 128) -> None:
    rows = cols = 4
    config = MachineConfig(rows * cols)
    table = []
    for strategy in ("template-cyclic", "template-block", "direct-block",
                     "direct-cyclic", "direct-general-block",
                     "max-align"):
        case = staggered_grid_case(n, rows, cols, strategy,
                                   machine=config)
        # template strategies execute on a data space mirrored out of
        # the template scope; adopt it into a session of its own
        session = case.session if case.session is not None \
            else Session(ds=case.ds, machine=config)
        session.record(case.statement)
        report = session.run().reports[0]
        table.append({
            "strategy": strategy,
            "locality": f"{report.locality:.3f}",
            "words": report.total_words,
            "messages": report.total_messages,
            "est_time":
                f"{session.machine.stats.estimated_time(config):.0f}",
        })
    print(f"staggered grid, N={n}, processors {rows}x{cols}")
    print(format_table(table))
    print()
    print("The (CYCLIC,CYCLIC) template separates every neighbour "
          "(locality 0);")
    print("(BLOCK,BLOCK) needs no template to recover >90% locality — "
          "the paper's point.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
