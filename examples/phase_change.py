#!/usr/bin/env python3
"""Dynamic phase change: REDISTRIBUTE between computation phases.

The paper's DYNAMIC/REDISTRIBUTE machinery exists for programs whose
best mapping changes between phases.  A classic case, written in the
directive language end to end — the sweeps are real ``DO`` loops, which
the front end lowers into the program IR's LoopNodes:

* phase 1 sweeps along rows   — wants (BLOCK, :) so rows are local;
* phase 2 sweeps along columns — wants (:, BLOCK) so columns are local.

Running both phases under either static mapping makes one of them pay
all-off-processor traffic; REDISTRIBUTE between phases pays a one-time
remap instead.  The example measures all three plans and prints the
crossover — the shape argument for dynamic distributions — then runs
the same text unchanged at ``-O2``, where the optimizer proves the
repeated sweep fetches redundant.

Run:  python examples/phase_change.py [N] [sweeps-per-phase]
"""

import sys

from repro.bench.harness import format_table
from repro.directives.analyzer import run_program
from repro.machine.config import MachineConfig


def build_source(n: int, sweeps: int, plan: str) -> str:
    head = f"""
      REAL X({n},{n}), ROWSUM({n},{n}), COLSUM({n},{n})
!HPF$ PROCESSORS PR(8)
!HPF$ DYNAMIC X
"""
    if plan == "rows":
        head += "!HPF$ DISTRIBUTE (BLOCK,:) TO PR :: X, ROWSUM, COLSUM\n"
    elif plan == "cols":
        head += "!HPF$ DISTRIBUTE (:,BLOCK) TO PR :: X, ROWSUM, COLSUM\n"
    else:   # dynamic
        head += "!HPF$ DISTRIBUTE X(BLOCK,:) TO PR\n"
        head += "!HPF$ DISTRIBUTE (BLOCK,:) TO PR :: ROWSUM\n"
        head += "!HPF$ DISTRIBUTE (:,BLOCK) TO PR :: COLSUM\n"
    h = n // 2
    body = [
        # phase 1 folds the right half of every row onto the left half:
        # purely row-internal, so (BLOCK,:) runs it without
        # communication, while (:,BLOCK) ships half the array per sweep
        f"      DO K = 1, {sweeps}",
        f"      ROWSUM(1:{n},1:{h}) = X(1:{n},1:{h}) "
        f"+ X(1:{n},{h + 1}:{n})",
        "      END DO",
    ]
    # phase change
    if plan == "dynamic":
        body.append("!HPF$ REDISTRIBUTE X(:,BLOCK) TO PR")
    # phase 2 folds the bottom half of every column onto the top half:
    # column-internal, the mirror situation
    body += [
        f"      DO K = 1, {sweeps}",
        f"      COLSUM(1:{h},1:{n}) = X(1:{h},1:{n}) "
        f"+ X({h + 1}:{n},1:{n})",
        "      END DO",
    ]
    return head + "\n".join(body) + "\n"


def main(n: int = 96, sweeps: int = 4) -> None:
    config = MachineConfig(8)
    rows = []
    for plan in ("rows", "cols", "dynamic"):
        res = run_program(build_source(n, sweeps, plan),
                          n_processors=8, machine=config)
        machine = res.machine
        # charge the remap events (ALLOCATE-time ones move nothing)
        from repro.engine.redistribute import charge_remap
        for event in res.ds.remap_events:
            if event.reason == "REDISTRIBUTE":
                charge_remap(machine, event)
        rows.append({
            "plan": f"static ({plan})" if plan != "dynamic"
                    else "REDISTRIBUTE between phases",
            "words": machine.stats.total_words,
            "messages": machine.stats.total_messages,
            "est_time": f"{machine.stats.estimated_time(config):.0f}",
        })
    print(f"two-phase sweep, X({n},{n}), 8 processors, "
          f"{sweeps} sweeps per phase")
    print(format_table(rows))
    print()
    print("each static plan is free in one phase and ships half the")
    print("array every sweep of the other; the dynamic plan pays one")
    print("7/8 remap of X and runs both phases locally — the argument")
    print("for DYNAMIC + REDISTRIBUTE (§4.2). With a single sweep per")
    print("phase the static plans win: the crossover is the point.")

    # the same text, unchanged, through the optimizer: X never changes
    # inside a phase, so sweeps 2..K re-fetch data the first sweep
    # already moved — communication CSE elides them
    res0 = run_program(build_source(n, sweeps, "cols"),
                       n_processors=8, machine=MachineConfig(8))
    res2 = run_program(build_source(n, sweeps, "cols"),
                       n_processors=8, machine=MachineConfig(8),
                       opt_level=2)
    w0 = res0.machine.stats.total_words
    w2 = res2.machine.stats.total_words
    skips = res2.savings.get("halo_skips", 0) \
        + res2.savings.get("cse_hits", 0)
    print()
    print(f"the static (cols) plan again, via run --opt: -O0 moves {w0}")
    print(f"words, -O2 moves {w2} ({skips} redundant sweep fetches")
    print("proven resident) — loop-aware optimization now reaches text")
    print("programs through the DO front end.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    sweeps = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, sweeps)
