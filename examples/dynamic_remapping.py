#!/usr/bin/env python3
"""The §6 allocatable program, run verbatim through the directive front
end, with the alignment forest and data movement traced statement by
statement.

The directive language is the second front door over the same spine as
the Session API: the execution part (ALLOCATE, REALIGN, REDISTRIBUTE)
lowers into the program IR, which the example prints.

Run:  python examples/dynamic_remapping.py
"""

from repro.bench.harness import format_table
from repro.directives.analyzer import run_program
from repro.engine.redistribute import price_remap

SRC = """
      REAL,ALLOCATABLE(:,:) :: A,B
      REAL,ALLOCATABLE(:) :: C,D
!HPF$ PROCESSORS PR(32)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
!HPF$ DISTRIBUTE(BLOCK) :: C,D
!HPF$ DYNAMIC B,C

      READ 6,M,N

      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
"""


def main() -> None:
    print("program (the paper's §6 example):")
    print(SRC)
    res = run_program(SRC, n_processors=32, inputs={"M": 4, "N": 8})

    print("-- the execution part, lowered to program IR ----------------")
    print(res.graph.describe())
    print()
    print("-- alignment forest after each line --------------------------")
    last = None
    for line, trees in res.snapshots:
        if trees != last:
            pretty = {p: sorted(s) for p, s in sorted(trees.items())}
            print(f"  line {line:3d}: {pretty}")
            last = trees

    print()
    print("-- data movement per dynamic event ---------------------------")
    rows = []
    for event in res.ds.remap_events:
        _, moved = price_remap(event, 32)
        rows.append({"event": event.reason, "array": event.array,
                     "elements moved": moved})
    print(format_table(rows))

    print()
    print("-- final mappings --------------------------------------------")
    print(res.ds.describe())
    print()
    b = res.ds
    print("collocation after REALIGN B(:,:) WITH A(M::M,1::M):")
    for i, j in ((1, 1), (2, 3), (8, 8)):
        print(f"  B({i},{j}) on {sorted(b.owners('B', (i, j)))}  ==  "
              f"A({4 * i},{4 * (j - 1) + 1}) on "
              f"{sorted(b.owners('A', (4 * i, 4 * (j - 1) + 1)))}")


if __name__ == "__main__":
    main()
