"""Tests for the message-accurate distributed executor.

The key property: numerics computed *exclusively from routed payloads*
equal the sequential reference semantics, and the routed word counts
equal the counting executor's matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.distexec import MessageAccurateExecutor
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.engine.reference import execute_sequential
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import staggered_grid_case


def fresh_machine(p=8):
    return DistributedMachine(MachineConfig(p))


class TestMessageAccurate:
    def test_identity_copy_routes_nothing(self, blocked_pair):
        ds = blocked_pair
        ds.arrays["A"].fill_sequence()
        ex = MessageAccurateExecutor(ds, fresh_machine())
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        assert rep.total_words == 0 and rep.remote_reads == 0
        np.testing.assert_array_equal(ds.arrays["B"].data,
                                      ds.arrays["A"].data)

    def test_block_to_cyclic_values_routed(self, cyclic_pair):
        ds = cyclic_pair
        ds.arrays["A"].fill_sequence()
        machine = fresh_machine()
        ex = MessageAccurateExecutor(ds, machine)
        rep = ex.execute(Assignment(ArrayRef("B"),
                                    2 * ArrayRef("A") + 1))
        np.testing.assert_array_equal(ds.arrays["B"].data,
                                      2 * np.arange(60) + 1)
        assert rep.total_words > 0
        assert machine.stats.total_words == rep.total_words

    def test_counts_match_counting_executor(self, cyclic_pair):
        ds = cyclic_pair
        stmt = Assignment(ArrayRef("B", (Triplet(1, 59, 2),)),
                          ArrayRef("A", (Triplet(2, 60, 2),)))
        m1 = fresh_machine()
        SimulatedExecutor(ds, m1, strategy="oracle").execute(stmt)
        m2 = fresh_machine()
        MessageAccurateExecutor(ds, m2).execute(stmt)
        np.testing.assert_array_equal(m1.stats.words_sent,
                                      m2.stats.words_sent)
        np.testing.assert_array_equal(m1.stats.words_recv,
                                      m2.stats.words_recv)

    def test_payloads_carry_correct_values(self, cyclic_pair):
        ds = cyclic_pair
        ds.arrays["A"].fill_sequence()
        ex = MessageAccurateExecutor(ds, fresh_machine())
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        for msg in rep.routed:
            np.testing.assert_array_equal(msg.payload,
                                          msg.positions.astype(float))

    def test_staggered_grid_numerics(self):
        case = staggered_grid_case(24, 2, 2, "direct-block")
        ds = case.ds
        ds.arrays["U"].data[:] = 1.0
        ds.arrays["V"].data[:] = 2.0
        MessageAccurateExecutor(ds, fresh_machine(4)).execute(
            case.statement)
        np.testing.assert_array_equal(ds.arrays["P"].data,
                                      np.full((24, 24), 6.0))

    def test_scalar_rhs(self, blocked_pair):
        ex = MessageAccurateExecutor(blocked_pair, fresh_machine())
        from repro.engine.expr import ScalarLit
        rep = ex.execute(Assignment(ArrayRef("B"), ScalarLit(3.0)))
        assert rep.total_words == 0
        assert (blocked_pair.arrays["B"].data == 3.0).all()

    def test_machine_size_checked(self, blocked_pair):
        from repro.errors import MachineError
        with pytest.raises(MachineError):
            MessageAccurateExecutor(blocked_pair, fresh_machine(4))


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_routed_execution_equals_sequential(data):
    """Property: for random mappings, sections and expressions, the
    payload-routed result equals the sequential reference result."""
    np_ = data.draw(st.integers(2, 5))
    n = 48
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    fmts = [Block(), Cyclic(), Cyclic(3),
            GeneralBlock.from_sizes([n // 2, n // 4, n - n // 2 - n // 4]
                                    + [0] * (np_ - 3)) if np_ >= 3
            else Block()]
    for name in ("A", "B", "C"):
        ds.declare(name, n)
        ds.distribute(name, [data.draw(st.sampled_from(fmts))], to="PR")
        ds.arrays[name].data[:] = np.arange(n) * (ord(name[0]) % 7 + 1)
    length = data.draw(st.integers(1, n // 2))
    secs = []
    for _ in range(3):
        stride = data.draw(st.integers(1, 2))
        lo = data.draw(st.integers(1, n - (length - 1) * stride))
        secs.append(Triplet(lo, lo + (length - 1) * stride, stride))
    stmt = Assignment(
        ArrayRef("C", (secs[0],)),
        ArrayRef("A", (secs[1],)) * 2 - ArrayRef("B", (secs[2],)))
    # sequential reference on a deep copy of the data space state
    expected_ds = DataSpace(np_, ap=ds.ap)
    for name in ("A", "B", "C"):
        expected_ds.declare(name, n)
        expected_ds.arrays[name].data[:] = ds.arrays[name].data
    expected = execute_sequential(expected_ds, stmt)
    machine = DistributedMachine(MachineConfig(np_))
    MessageAccurateExecutor(ds, machine).execute(stmt)
    got = ds.arrays["C"].data[secs[0].lower - 1:secs[0].last:
                              secs[0].stride]
    np.testing.assert_array_equal(got, expected)