"""Tests for the autotune subsystem (repro.autotune).

Covers the unified partitioners, the advisor's hand-computed economics
(crossover, hysteresis, never-adapt-on-the-last-trip), cost-driven pass
selection, the RPR023 imbalance lint, the feedback gate, the service's
per-tenant adaptation counters, the report-only front doors, and the
end-to-end acceptance scenario: a power-law-imbalanced Jacobi on P=8
where ``opt="auto"`` emits exactly one REDISTRIBUTE to GENERAL_BLOCK,
improves modeled makespan by >= 25% and stays bit-identical to the
static run — plus a 50-seed differential leg over the random corpus
proving ``opt="auto"`` never perturbs numerics or ledgers when there is
nothing to adapt.
"""

from __future__ import annotations

import numpy as np
import pytest

import test_differential_random as corpus

from repro.api.session import Session
from repro.autotune import (
    HYSTERESIS,
    MIN_TRIPS_LEFT,
    AutoTuner,
    WorkProfile,
    balanced_bounds,
    imbalance,
    lpt_partition,
    partition_work,
    propose_for_loop,
    select_passes,
    tune_graph,
)
from repro.distributions.base import Collapsed
from repro.distributions.block import Block
from repro.distributions.general_block import GeneralBlock
from repro.engine.ir import LoopNode, RedistributeNode
from repro.engine.passes import RemapPlan, passes_for
from repro.errors import MachineError, MappingError
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.irregular import (
    imbalanced_jacobi_session,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)


# ----------------------------------------------------------------------
# The unified partitioners
# ----------------------------------------------------------------------
def test_balanced_for_costs_delegates_to_partition_module():
    for costs in (triangular_costs(64), power_law_costs(100, 2.0),
                  stepped_costs(80, seed=3)):
        for np_ in (2, 4, 7):
            via_format = GeneralBlock.balanced_for_costs(costs, np_)
            assert via_format.bounds == \
                tuple(balanced_bounds(costs, np_, lower=1))


def test_balanced_bounds_respects_lower_bound():
    costs = np.ones(10)
    assert balanced_bounds(costs, 2, lower=1) == [5]
    assert balanced_bounds(costs, 2, lower=0) == [4]


def test_lpt_never_worse_than_contiguous_splitter():
    """LPT optimizes over a strictly larger feasible set (pieces need
    not be contiguous), so its makespan imbalance is never worse."""
    for costs in (triangular_costs(64), power_law_costs(64, 2.0),
                  stepped_costs(64, 0.1, 50.0, seed=7)):
        for np_ in (2, 4, 8):
            fmt = GeneralBlock.balanced_for_costs(costs, np_)
            bound = fmt.bind(
                __import__("repro.fortran.triplet",
                           fromlist=["Triplet"]).Triplet(1, len(costs)),
                np_)
            contiguous = bound.owners_of(np.arange(1, len(costs) + 1))
            lpt = lpt_partition(costs, np_)
            imb_contig = imbalance(partition_work(costs, contiguous, np_))
            imb_lpt = imbalance(partition_work(costs, lpt, np_))
            assert imb_lpt <= imb_contig + 1e-12


def test_partition_work_and_imbalance():
    costs = np.array([3.0, 1.0, 2.0, 2.0])
    owners = np.array([0, 1, 0, 1])
    work = partition_work(costs, owners, 2)
    np.testing.assert_array_equal(work, [5.0, 3.0])
    assert imbalance(work) == pytest.approx(5.0 / 4.0)
    assert imbalance(np.zeros(4)) == 1.0


# ----------------------------------------------------------------------
# Advisor economics (hand-computed crossovers)
# ----------------------------------------------------------------------
def _skew_session(count: int, opt=0) -> Session:
    """X(8) BLOCK over 2 procs, costs [0]*4+[1]*4: BLOCK work [0, 4],
    balanced GENERAL_BLOCK((6)) work [2, 2]; the remap moves indices
    5..6 from p1 to p0 — 2 words, 1 message."""
    s = Session(2, opt=opt)
    pr = s.processors("PR", 2)
    x = s.array("X", 8, dynamic=True).distribute(Block(), to=pr)
    x.cost_profile([0, 0, 0, 0, 1, 1, 1, 1])
    x.data[:] = np.arange(8.0)
    with s.loop(count):
        x[1:-1] = x[:-2] + x[2:]
    return s


def _only_loop(s: Session) -> LoopNode:
    loops = [n for n in s.lower().nodes if isinstance(n, LoopNode)]
    assert len(loops) == 1
    return loops[0]


def test_advisor_hand_computed_economics():
    s = _skew_session(5)
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=1.0)
    props = propose_for_loop(s.ds, config, _only_loop(s))
    assert len(props) == 1
    p = props[0]
    assert p.array == "X"
    assert p.formats[0].bounds == (6,)
    # work [0,4] -> [2,2]; flop=1, one referencing statement per trip
    assert p.per_trip_gain == pytest.approx(2.0)
    assert p.trips_left == 4
    assert p.modeled_gain == pytest.approx(8.0)
    # remap matrix: 2 elements move p1->p0 in one message
    assert p.moved_words == 2
    assert p.messages == 1
    assert p.modeled_cost == pytest.approx(2.0)
    assert p.imbalance_before == pytest.approx(2.0)
    assert p.imbalance_after == pytest.approx(1.0)
    assert p.worthwhile       # 8.0 > 1.25 * 2.0


def test_advisor_hysteresis_band_declines():
    """Gain above cost but inside the hysteresis band must not adopt."""
    s = _skew_session(3)      # trips_left = 2
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=0.55)
    (p,) = propose_for_loop(s.ds, config, _only_loop(s))
    assert p.modeled_gain == pytest.approx(2.2)
    assert p.modeled_cost == pytest.approx(2.0)
    assert p.modeled_gain > p.modeled_cost
    assert not p.worthwhile   # 2.2 <= 1.25 * 2.0
    # and exactly at the crossover the strict inequality still declines
    config_edge = MachineConfig(2, alpha=0.0, beta=1.0, flop=0.625)
    (edge,) = propose_for_loop(s.ds, config_edge, _only_loop(s))
    assert edge.modeled_gain == pytest.approx(
        HYSTERESIS * edge.modeled_cost)
    assert not edge.worthwhile


def test_advisor_never_adapts_on_the_last_trip():
    """A 2-trip loop leaves one trip after the boundary — less than
    MIN_TRIPS_LEFT — so no proposal exists at any price."""
    assert MIN_TRIPS_LEFT == 2
    s = _skew_session(2)
    config = MachineConfig(2, alpha=0.0, beta=0.0, flop=1e9)
    assert propose_for_loop(s.ds, config, _only_loop(s)) == []
    # three trips (two left) is the first adaptable count
    s3 = _skew_session(3)
    assert propose_for_loop(s3.ds, config, _only_loop(s3)) != []


def test_advisor_skips_balanced_and_static_arrays():
    # uniform costs: BLOCK is already balanced, nothing to gain
    s = Session(2)
    pr = s.processors("PR", 2)
    x = s.array("X", 8, dynamic=True).distribute(Block(), to=pr)
    x.cost_profile(np.ones(8))
    x.data[:] = 0.0
    with s.loop(5):
        x[1:-1] = x[:-2] + x[2:]
    assert propose_for_loop(s.ds, MachineConfig(2), _only_loop(s)) == []
    # non-DYNAMIC array: the remap would be illegal, no proposal
    s2 = Session(2)
    pr2 = s2.processors("PR", 2)
    y = s2.array("Y", 8).distribute(Block(), to=pr2)
    y.cost_profile([0, 0, 0, 0, 1, 1, 1, 1])
    y.data[:] = 0.0
    with s2.loop(5):
        y[1:-1] = y[:-2] + y[2:]
    assert propose_for_loop(s2.ds, MachineConfig(2), _only_loop(s2)) == []


def test_advisor_skip_list_excludes_adapted_arrays():
    s = _skew_session(5)
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=1.0)
    assert propose_for_loop(s.ds, config, _only_loop(s),
                            skip={"X"}) == []


def test_cost_profile_validation():
    s = Session(2)
    s.processors("PR", 2)
    s.array("X", 8, dynamic=True)
    with pytest.raises(MappingError):
        s.ds.set_cost_profile("X", [])
    with pytest.raises(MappingError):
        s.ds.set_cost_profile("X", [[1.0, 2.0]])
    with pytest.raises(MappingError):
        s.ds.set_cost_profile("X", [1.0, -1.0])
    with pytest.raises(MappingError):
        s.ds.set_cost_profile("X", [1.0] * 5)   # extent mismatch
    s.ds.set_cost_profile("X", [1.0] * 8)
    assert s.ds.cost_profile("X").shape == (8,)
    assert s.ds.cost_profile("NOPE") is None


# ----------------------------------------------------------------------
# Cost-driven pass selection
# ----------------------------------------------------------------------
def _pass_graph(statements: int = 2):
    s = Session(2, machine=False)
    pr = s.processors("PR", 2)
    x = s.array("X", 8).distribute(Block(), to=pr)
    x.data[:] = 0.0
    for _ in range(statements):
        x[1:-1] = x[:-2] + x[2:]
    return s.lower()


def test_select_passes_core_always_on():
    passes, rationale = select_passes(_pass_graph(), MachineConfig(2))
    assert {"halo", "cse"} <= passes
    assert set(rationale) == {"halo", "cse", "coalesce", "subsume",
                              "hoist"}


def test_select_passes_coalesce_needs_alpha_and_width():
    free_msgs = MachineConfig(2, alpha=0.0)
    passes, rationale = select_passes(_pass_graph(), free_msgs)
    assert "coalesce" not in passes
    assert "alpha=0" in rationale["coalesce"]
    passes, rationale = select_passes(_pass_graph(1), MachineConfig(2))
    assert "coalesce" not in passes
    assert "single-statement" in rationale["coalesce"]
    passes, _ = select_passes(_pass_graph(2), MachineConfig(2))
    assert "coalesce" in passes


def test_select_passes_subsume_needs_beta_and_repeated_source():
    # the stencil statement reads X twice: repeated source present
    passes, _ = select_passes(_pass_graph(), MachineConfig(2))
    assert "subsume" in passes
    free_words = MachineConfig(2, beta=0.0)
    passes, rationale = select_passes(_pass_graph(), free_words)
    assert "subsume" not in passes
    assert "beta=0" in rationale["subsume"]
    # distinct sources only: nothing for subsumption to contain
    s = Session(2, machine=False)
    pr = s.processors("PR", 2)
    x = s.array("X", 8).distribute(Block(), to=pr)
    y = s.array("Y", 8).distribute(Block(), to=pr)
    x.data[:] = 0.0
    y.data[:] = 0.0
    x[1:-1] = y[:-2] + 1.0
    x[1:-1] = y[2:] * 2.0
    passes, rationale = select_passes(s.lower(), MachineConfig(2))
    assert "subsume" not in passes
    assert "no statement" in rationale["subsume"]


def test_select_passes_hoist_needs_hoistable_remap():
    passes, rationale = select_passes(_pass_graph(), MachineConfig(2))
    assert "hoist" not in passes
    s = Session(2)
    pr = s.processors("PR", 2)
    x = s.array("X", 8, dynamic=True).distribute(Block(), to=pr)
    x.data[:] = 0.0
    with s.loop(3):
        x.redistribute(GeneralBlock([5]), to=pr)
        x[1:-1] = x[:-2] + x[2:]
    passes, rationale = select_passes(s.lower(), MachineConfig(2))
    assert "hoist" in passes
    assert "loop-invariant" in rationale["hoist"]


def test_passes_for_accepts_auto():
    assert passes_for("auto") == passes_for(2)
    with pytest.raises(MachineError):
        passes_for("fastest")
    with pytest.raises(MachineError):
        passes_for(3)


# ----------------------------------------------------------------------
# The feedback gate and the tuner
# ----------------------------------------------------------------------
def test_tuner_feedback_gate_requires_observed_work():
    s = _skew_session(5)
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=1.0)
    machine = DistributedMachine(config)
    profile = WorkProfile(2)
    tuner = AutoTuner(s.ds, machine, config=config, profile=profile)
    decision = tuner.consider(_only_loop(s))
    assert decision is not None
    # nothing observed since the mark: the gate declines, no emit
    emitted = []
    assert tuner.apply(decision, emitted.append) == []
    assert emitted == []
    assert tuner.adaptations == []
    # observed work flips the gate
    profile.statements += 1
    profile.local_ops += np.array([0, 4], dtype=np.int64)
    applied = tuner.apply(decision, emitted.append)
    assert len(applied) == 1 and len(emitted) == 1
    assert applied[0].confirmed
    assert tuner.adapted == frozenset({"X"})


def test_tuner_without_profile_never_acts():
    s = _skew_session(5)
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=1.0)
    tuner = AutoTuner(s.ds, DistributedMachine(config), config=config,
                      profile=None)
    decision = tuner.consider(_only_loop(s))
    assert decision is not None and decision.mark is None
    assert tuner.apply(decision, lambda p: None) == []


def test_tuner_decides_once_per_static_loop():
    s = _skew_session(5)
    config = MachineConfig(2, alpha=0.0, beta=1.0, flop=1.0)
    tuner = AutoTuner(s.ds, DistributedMachine(config), config=config,
                      profile=WorkProfile(2))
    loop = _only_loop(s)
    assert tuner.consider(loop) is not None
    assert tuner.consider(loop) is None


# ----------------------------------------------------------------------
# RPR023: statically detectable load imbalance
# ----------------------------------------------------------------------
def test_rpr023_reported_for_imbalanced_profile():
    s = imbalanced_jacobi_session(64, 8, 12)
    codes = [d.code for d in s.check()]
    assert "RPR023" in codes
    finding = next(d for d in s.check() if d.code == "RPR023")
    assert "2.6" in finding.message            # modeled imbalance ratio
    assert "opt='auto'" in finding.message


def test_rpr023_silent_when_balanced_or_perf_off():
    s = imbalanced_jacobi_session(64, 8, 12)
    assert all(d.code != "RPR023" for d in s.check(perf=False))
    balanced = imbalanced_jacobi_session(64, 8, 12,
                                         costs=np.ones(64))
    assert all(d.code != "RPR023" for d in balanced.check())
    # no profile declared: nothing to reason from
    plain = imbalanced_jacobi_session(64, 8, 12)
    plain.ds.cost_profiles.clear()
    assert all(d.code != "RPR023" for d in plain.check())


# ----------------------------------------------------------------------
# End-to-end acceptance: the imbalanced Jacobi on P=8
# ----------------------------------------------------------------------
def _acceptance_sessions():
    auto = imbalanced_jacobi_session(64, 8, 12, exponent=2.0, opt="auto")
    static = imbalanced_jacobi_session(64, 8, 12, exponent=2.0, opt=2)
    return auto, static


def test_auto_adapts_exactly_once_and_improves():
    auto, static = _acceptance_sessions()
    result = auto.run()
    static_result = static.run()

    # exactly one REDISTRIBUTE, to a balanced GENERAL_BLOCK
    assert len(result.adaptations) == 1
    adaptation = result.adaptations[0]
    remaps = [p for p in result.schedule.steps
              if isinstance(p, RemapPlan)]
    assert len(remaps) == 1 and remaps[0].executed
    new_fmt = adaptation.proposal.formats[0]
    assert isinstance(new_fmt, GeneralBlock)
    assert new_fmt.bounds == tuple(balanced_bounds(
        power_law_costs(64, 2.0), 8, lower=1))
    assert auto.ds.distribution_of("X").formats[0] is new_fmt

    # modeled makespan improves by >= 25% over the static BLOCK layout
    assert adaptation.proposal.improvement >= 0.25

    # numerics bit-identical to the static run
    np.testing.assert_array_equal(auto.ds.arrays["X"].data,
                                  static.ds.arrays["X"].data)

    # report honesty: modeled economics beside what was charged
    assert adaptation.modeled_gain > HYSTERESIS * adaptation.modeled_cost
    assert adaptation.charged_words == adaptation.proposal.moved_words
    assert adaptation.charged_messages >= 1
    assert adaptation.confirmed
    # the static run never remaps
    assert static_result.adaptations == []
    assert all(not isinstance(p, RemapPlan)
               for p in static_result.schedule.steps)


def test_tune_reports_the_identical_proposal_without_executing():
    auto, _ = _acceptance_sessions()
    report = auto.tune()                 # non-consuming, report-only
    assert len(report.adoptions) == 1
    proposed = report.adoptions[0]
    assert auto.ds.distribution_of("X").formats[0].__class__ is Block
    assert len(s := auto.lower().nodes) == 1   # program still pending

    result = auto.run()
    assert len(result.adaptations) == 1
    acted = result.adaptations[0].proposal
    assert proposed.formats[0].bounds == acted.formats[0].bounds
    assert proposed.modeled_gain == pytest.approx(acted.modeled_gain)
    assert proposed.modeled_cost == pytest.approx(acted.modeled_cost)
    assert proposed.trip == acted.trip


def test_auto_matches_static_when_profile_is_balanced():
    auto = imbalanced_jacobi_session(48, 4, 6, costs=np.ones(48),
                                     opt="auto")
    static = imbalanced_jacobi_session(48, 4, 6, costs=np.ones(48),
                                       opt=2)
    ra, rs = auto.run(), static.run()
    assert ra.adaptations == []
    np.testing.assert_array_equal(auto.ds.arrays["X"].data,
                                  static.ds.arrays["X"].data)
    assert ra.machine.stats.total_words == rs.machine.stats.total_words


def test_auto_spmd_backend_bit_identical_to_simulate():
    from repro.machine.backend import Backend
    with imbalanced_jacobi_session(
            48, 4, 8, opt="auto",
            backend=Backend.spmd(mode="thread")) as spmd:
        r_spmd = spmd.run()
        sim = imbalanced_jacobi_session(48, 4, 8, opt="auto")
        r_sim = sim.run()
        assert len(r_spmd.adaptations) == len(r_sim.adaptations) == 1
        np.testing.assert_array_equal(spmd.ds.arrays["X"].data,
                                      sim.ds.arrays["X"].data)
        assert r_spmd.machine.stats.total_words == \
            r_sim.machine.stats.total_words
        assert r_spmd.machine.stats.total_messages == \
            r_sim.machine.stats.total_messages


def test_session_describe_and_properties():
    s = Session(2, opt="auto")
    assert s.auto and s.opt == "auto" and s.opt_level == 2
    assert "opt=auto" in s.describe()
    s2 = Session(2, opt=2)
    assert not s2.auto and s2.opt_level == 2
    assert "opt=-O2" in s2.describe()
    with pytest.raises(ValueError):
        Session(2, opt="fastest")


def test_tune_requires_machine():
    s = Session(2, machine=False)
    with pytest.raises(MachineError):
        s.tune()


# ----------------------------------------------------------------------
# Service integration: per-tenant adaptation counters
# ----------------------------------------------------------------------
def test_service_counts_adaptations_per_tenant():
    from repro.engine.planstore import PlanStore
    from repro.serve import SessionService

    with SessionService(plan_store=PlanStore()) as svc:
        adapting = imbalanced_jacobi_session(64, 8, 12, opt="auto",
                                             service=svc)
        static = imbalanced_jacobi_session(64, 8, 12, opt=2,
                                           service=svc)
        r1 = adapting.run()
        r2 = static.run()
        assert len(r1.adaptations) == 1 and r2.adaptations == []
        stats = svc.stats()
        counts = stats["adaptations"]
        assert sorted(counts) == ["tenant-0", "tenant-1"]
        assert counts["tenant-0"] == 1
        assert counts["tenant-1"] == 0
        adapting.close()
        static.close()


# ----------------------------------------------------------------------
# The bench-diff autotune gate
# ----------------------------------------------------------------------
def test_bench_diff_autotune_gate():
    from repro.bench.diff import diff_autotune_makespans

    def row(name, makespan, adaptations=0):
        return {"name": name, "modeled_makespan": makespan,
                "adaptations": adaptations}

    good = {
        "jacobi_imbalanced_static": row("jacobi_imbalanced_static", 10.0),
        "jacobi_imbalanced_auto": row("jacobi_imbalanced_auto", 4.0, 1),
        "jacobi_imbalanced_general":
            row("jacobi_imbalanced_general", 4.0),
    }
    assert diff_autotune_makespans(good, good) == []
    # baselines predating the autotune rows skip the survival check
    assert diff_autotune_makespans({}, good) == []
    # auto worse than static BLOCK: the tuner degraded the layout
    worse = dict(good)
    worse["jacobi_imbalanced_auto"] = row("jacobi_imbalanced_auto",
                                          11.0, 1)
    assert any("worse than the static BLOCK" in p
               for p in diff_autotune_makespans({}, worse))
    # auto drifting past 5% of the hand-tuned row
    drift = dict(good)
    drift["jacobi_imbalanced_auto"] = row("jacobi_imbalanced_auto",
                                          4.5, 1)
    assert any("hand-tuned" in p
               for p in diff_autotune_makespans({}, drift))
    # a tuner that silently stopped firing
    inert = dict(good)
    inert["jacobi_imbalanced_auto"] = row("jacobi_imbalanced_auto",
                                          4.0, 0)
    assert any("no adaptation" in p
               for p in diff_autotune_makespans({}, inert))
    # gated rows must survive into the candidate
    assert any("missing" in p for p in diff_autotune_makespans(good, {}))
    partial = {"jacobi_imbalanced_auto":
               row("jacobi_imbalanced_auto", 4.0, 1)}
    assert any("incomplete" in p
               for p in diff_autotune_makespans({}, partial))


def test_quick_bench_emits_autotune_rows():
    from repro.bench.harness import _autotune_rows

    rows = {r["name"]: r for r in _autotune_rows(1)}
    assert sorted(rows) == ["jacobi_imbalanced_auto",
                            "jacobi_imbalanced_general",
                            "jacobi_imbalanced_static"]
    auto, general, static = (rows["jacobi_imbalanced_auto"],
                             rows["jacobi_imbalanced_general"],
                             rows["jacobi_imbalanced_static"])
    assert auto["adaptations"] == 1
    assert static["adaptations"] == general["adaptations"] == 0
    # auto converges on exactly the hand-tuned layout's makespan
    assert auto["modeled_makespan"] == general["modeled_makespan"]
    assert auto["modeled_makespan"] <= static["modeled_makespan"] * 0.75
    # the remap is charged honestly: auto moves more words than static
    assert auto["words_moved"] > static["words_moved"]


# ----------------------------------------------------------------------
# Differential leg: opt="auto" over the 50-seed random corpus
# ----------------------------------------------------------------------
def _corpus_session(case: dict, opt) -> Session:
    s = Session(case["p"], opt=opt,
                machine=MachineConfig(case["p"]))
    pr = s.processors("PR", case["p"])
    rng = np.random.default_rng(case["data_seed"])
    handles = {}
    for name, size, spec in case["arrays"]:
        h = s.array(name, size)
        if spec[0] == "aligned":
            h.align(handles["A"], lambda I, off=spec[1]: I + off)
        else:
            h.distribute(corpus._build_format(spec), to=pr)
        h.data[:] = rng.uniform(-8.0, 8.0, size=size)
        handles[name] = h
    return s


@pytest.mark.parametrize("seed", range(corpus.N_CASES))
def test_auto_differential_matches_static(seed):
    """Nothing in the corpus is adaptable (no DYNAMIC arrays, no cost
    profiles), so ``opt="auto"`` must degrade gracefully: numerics and
    charged words bit-identical to static -O2, and an honest (empty)
    adaptations report."""
    case = corpus._case(seed)
    stmt = corpus._statement(case)

    s_auto = _corpus_session(case, "auto")
    s_auto.record(stmt)
    r_auto = s_auto.run()

    s_static = _corpus_session(case, 2)
    s_static.record(stmt)
    r_static = s_static.run()

    assert r_auto.adaptations == []
    for name in s_static.ds.arrays:
        np.testing.assert_array_equal(
            s_auto.ds.arrays[name].data, s_static.ds.arrays[name].data,
            err_msg=f"seed {seed}: auto numerics diverge on {name}")
    # pass pruning may merge fewer messages, never move different words
    assert s_auto.machine.stats.total_words == \
        s_static.machine.stats.total_words
    assert r_auto.logical_words == r_static.logical_words
