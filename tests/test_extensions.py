"""Tests for the library extensions: INDIRECT/user-defined distributions
(§8.1.2's missing expressiveness), processor VIEWs (§9) and the
ghost-region execution mode (SUPERB overlap)."""

import numpy as np
import pytest

from repro.core.dataspace import DataSpace
from repro.core.procedures import InheritedSectionDistribution
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.indirect import (
    Indirect,
    UserDefined,
    compress_to_triplets,
)
from repro.engine.assignment import Assignment
from repro.engine.commsets import analytic_comm_sets, comm_matrix, \
    words_matrix_from_pieces
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.errors import DistributionError, MappingError
from repro.fortran.section import full_section
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import jacobi_case


class TestCompressToTriplets:
    def test_empty(self):
        assert compress_to_triplets(np.array([], dtype=int)) == ()

    def test_singleton(self):
        assert compress_to_triplets(np.array([7])) == (Triplet(7, 7, 1),)

    def test_contiguous_run(self):
        got = compress_to_triplets(np.arange(3, 10))
        assert got == (Triplet(3, 9, 1),)

    def test_strided_run(self):
        got = compress_to_triplets(np.array([1, 4, 7, 10]))
        assert got == (Triplet(1, 10, 3),)

    def test_mixed_runs(self):
        got = compress_to_triplets(np.array([1, 2, 3, 10, 20, 30, 31]))
        flattened = [v for t in got for v in t]
        assert flattened == [1, 2, 3, 10, 20, 30, 31]

    def test_roundtrip_random(self):
        rng = np.random.default_rng(5)
        vals = np.unique(rng.integers(0, 200, size=60))
        got = compress_to_triplets(vals)
        flattened = [v for t in got for v in t]
        assert flattened == sorted(vals.tolist())


class TestIndirect:
    def test_owner_lookup(self):
        fmt = Indirect([0, 2, 1, 1, 0, 2])
        dd = fmt.bind(Triplet(1, 6), 3)
        assert [dd.owner_coord(i) for i in range(1, 7)] == \
            [0, 2, 1, 1, 0, 2]

    def test_length_validated(self):
        with pytest.raises(DistributionError):
            Indirect([0, 1]).bind(Triplet(1, 6), 3)

    def test_range_validated(self):
        with pytest.raises(DistributionError):
            Indirect([0, 3, 1, 1, 0, 2]).bind(Triplet(1, 6), 3)

    def test_owned_sets_partition(self):
        mapping = [0, 2, 1, 1, 0, 2, 0, 0]
        dd = Indirect(mapping).bind(Triplet(0, 7), 3)
        seen = []
        for p in range(3):
            for t in dd.owned(p):
                seen.extend(t)
        assert sorted(seen) == list(range(0, 8))

    def test_local_global_roundtrip(self):
        rng = np.random.default_rng(9)
        mapping = rng.integers(0, 4, size=40)
        dd = Indirect(mapping).bind(Triplet(1, 40), 4)
        for i in range(1, 41):
            p = dd.owner_coord(i)
            assert dd.global_index(p, dd.local_index(i)) == i
        assert sum(dd.local_extent(p) for p in range(4)) == 40

    def test_user_defined_function(self):
        # an arbitrary mapping no HPF format can express: parity + halves
        fn = UserDefined(lambda i: (i % 2) * 2 + (i > 8), "parity")
        dd = fn.bind(Triplet(1, 16), 4)
        assert dd.owner_coord(3) == 2   # odd, <= 8
        assert dd.owner_coord(10) == 1  # even, > 8

    def test_analytic_comm_sets_work_with_indirect(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("X", 32)
        ds.declare("Y", 32)
        rng = np.random.default_rng(17)
        ds.distribute("X", [Indirect(rng.integers(0, 4, size=32))],
                      to="PR")
        ds.distribute("Y", [Cyclic()], to="PR")
        dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
        sec = full_section(ds.arrays["X"].domain)
        m1, _, _ = comm_matrix(dl, sec, dr, sec, 4)
        m2 = words_matrix_from_pieces(
            analytic_comm_sets(dl, sec, dr, sec, piece_limit=64), 4)
        np.testing.assert_array_equal(m1, m2)

    def test_section_inheritance_becomes_expressible(self):
        """§8.1.2 resolved: the inherited distribution of A(2:996:2)
        (CYCLIC(3) parent) *is* directly describable as INDIRECT —
        the user-defined-distribution capability HPF lacked."""
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 1000)
        ds.distribute("A", [Cyclic(3)], to="PR")
        sec = ds.section("A", Triplet(2, 996, 2))
        inherited = InheritedSectionDistribution(
            ds.distribution_of("A"), sec)
        mapping = inherited.primary_owner_map()
        ds.declare("X", 498)
        ds.distribute("X", [Indirect(mapping)], to="PR")
        np.testing.assert_array_equal(ds.owner_map("X"), mapping)

    def test_directive_level_indirect(self):
        from repro.directives.analyzer import run_program
        res = run_program("""
      REAL A(8)
      INTEGER MAP(1:8)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(INDIRECT(MAP)) TO PR
""", n_processors=4, inputs={"MAP": [1, 2, 3, 4, 4, 3, 2, 1]})
        # 1-based directive values -> 0-based units
        np.testing.assert_array_equal(res.ds.owner_map("A"),
                                      [0, 1, 2, 3, 3, 2, 1, 0])


class TestProcessorViews:
    def test_view_shares_units(self, ds8):
        pr = ds8.ap.arrangement("PR")
        grid = ds8.ap.view(pr, "GRID", 2, 4)
        # same column-major rank -> same AP unit (§9 reshaping)
        assert ds8.ap.ap_unit(grid, (1, 1)) == ds8.ap.ap_unit(pr, (1,))
        assert ds8.ap.ap_unit(grid, (2, 3)) == ds8.ap.ap_unit(pr, (6,))
        assert ds8.ap.share_processors(pr, grid)

    def test_view_by_name(self, ds8):
        ds8.ap.view("PR", "GRID", 4, 2)
        assert ds8.ap.arrangement("GRID").shape == (4, 2)

    def test_view_size_mismatch(self, ds8):
        with pytest.raises(MappingError):
            ds8.ap.view("PR", "BAD", 3, 3)

    def test_distribute_to_view(self, ds8):
        ds8.ap.view("PR", "GRID", 2, 4)
        ds8.declare("A", 8, 8)
        ds8.distribute("A", [Block(), Block()], to="GRID")
        assert len(ds8.distribution_of("A").processors()) == 8


class TestOverlapExecution:
    def test_overlap_mode_jacobi_message_parity(self):
        # 5-point Jacobi has one reference per direction: halo exchange
        # needs the same number of messages, never more
        case = jacobi_case(64, 2, 2)
        naive = DistributedMachine(MachineConfig(4))
        SimulatedExecutor(case.ds, naive).execute(case.statement)
        halo = DistributedMachine(MachineConfig(4))
        rep = SimulatedExecutor(case.ds, halo,
                                use_overlap=True).execute(case.statement)
        assert rep.strategies.get("*") == "overlap"
        assert halo.stats.total_messages <= naive.stats.total_messages
        # halo volume bounds the naive traffic from above (full strips)
        assert halo.stats.total_words >= naive.stats.total_words

    def test_overlap_mode_batches_width2_stencil(self):
        # two references per direction (width-2): the halo batches them
        # into one message per neighbour — strictly fewer messages
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 64)
        ds.declare("B", 64)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(
            ArrayRef("B", (Triplet(3, 62),)),
            ArrayRef("A", (Triplet(1, 60),))
            + ArrayRef("A", (Triplet(2, 61),))
            + ArrayRef("A", (Triplet(4, 63),))
            + ArrayRef("A", (Triplet(5, 64),)))
        naive = DistributedMachine(MachineConfig(4))
        SimulatedExecutor(ds, naive).execute(stmt)
        halo = DistributedMachine(MachineConfig(4))
        rep = SimulatedExecutor(ds, halo, use_overlap=True).execute(stmt)
        assert rep.strategies.get("*") == "overlap"
        assert halo.stats.total_messages < naive.stats.total_messages

    def test_overlap_mode_falls_back(self, cyclic_pair, machine8):
        # non-halo-form mapping: overlap unavailable, normal accounting
        ex = SimulatedExecutor(cyclic_pair, machine8, use_overlap=True)
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        assert "overlap" not in rep.strategies.values()
        assert rep.total_words > 0

    def test_overlap_mode_keeps_numerics(self):
        case = jacobi_case(32, 2, 2)
        case.ds.arrays["X"].data[:] = 4.0
        machine = DistributedMachine(MachineConfig(4))
        SimulatedExecutor(case.ds, machine,
                          use_overlap=True).execute(case.statement)
        inner = case.ds.arrays["XNEW"].data[1:-1, 1:-1]
        np.testing.assert_allclose(inner, 4.0)
