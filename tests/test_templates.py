"""Unit tests for the template baseline (§8) and its impossibilities."""

import numpy as np
import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import ConformanceError, MappingError, TemplateError
from repro.fortran.section import ArraySection
from repro.fortran.triplet import Triplet
from repro.templates.equivalence import (
    derive_general_block_formats,
    derive_witness_model,
    mappings_equivalent,
    verify_equivalence,
)
from repro.templates.inherit import inherit_mapping, section_alignment
from repro.templates.model import ChainedAlignment, TemplateDataSpace
from repro.templates.template import Template
from repro.fortran.domain import IndexDomain
from repro.distributions.distribution import FormatDistribution


def ident(alignee, base, factor=1, offset=0):
    return AlignSpec(alignee, [AxisDummy("I")], base,
                     [BaseExpr(factor * Dummy("I") + offset)])


class TestTemplateObject:
    def test_tagged_identity(self):
        # distinct definitions are different even with equal domains
        a = Template("T", IndexDomain.standard(8))
        b = Template("T", IndexDomain.standard(8))
        assert a is not b and a != b and a.tag != b.tag

    def test_shape_validation(self):
        with pytest.raises(TemplateError):
            Template("T", IndexDomain.scalar())

    def test_not_allocatable(self):
        t = Template("T", IndexDomain.standard(8))
        with pytest.raises(TemplateError):
            t.allocate()

    def test_not_passable(self):
        t = Template("T", IndexDomain.standard(8))
        with pytest.raises(TemplateError):
            t.pass_to_procedure()


class TestTemplateDataSpace:
    def make(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        return tds

    def test_align_to_template_and_distribute(self):
        tds = self.make()
        tds.template("T", 64)
        tds.declare("X", 32)
        tds.align(ident("X", "T", 2))
        tds.distribute("T", [Block()], to="PR")
        assert tds.owners("X", (1,)) == frozenset({0})
        assert tds.owners("X", (32,)) == frozenset({3})

    def test_template_cannot_be_alignee(self):
        tds = self.make()
        tds.template("T", 64)
        tds.declare("X", 64)
        with pytest.raises(TemplateError):
            tds.align(ident("T", "X"))

    def test_chain_resolution(self):
        tds = self.make()
        tds.declare("A", 70)
        tds.declare("B", 64)
        tds.declare("C", 32)
        tds.distribute("A", [Cyclic()], to="PR")
        tds.align(ident("B", "A", 1, 3))
        tds.align(ident("C", "B", 2))
        base, chain = tds.ultimate_base("C")
        assert base == "A" and chain.depth == 2
        assert tds.resolution_depth("C") == 2
        # C(i) -> B(2i) -> A(2i+3)
        assert tds.owners("C", (5,)) == tds.owners("A", (13,))

    def test_cycle_rejected(self):
        tds = self.make()
        tds.declare("A", 8)
        tds.declare("B", 8)
        tds.align(ident("A", "B"))
        with pytest.raises(MappingError):
            tds.align(ident("B", "A"))

    def test_undistributed_base_error(self):
        tds = self.make()
        tds.template("T", 8)
        tds.declare("X", 8)
        tds.align(ident("X", "T"))
        with pytest.raises(MappingError):
            tds.distribution_of("X")

    def test_runtime_shaped_alignee_rejected(self):
        # §8.2 problem 1
        tds = self.make()
        tds.template("T", 64)
        tds.declare("B", 16, runtime_shape=True)
        with pytest.raises(TemplateError):
            tds.align(ident("B", "T", 2))

    def test_pass_template_rejected(self):
        tds = self.make()
        tds.template("T", 8)
        with pytest.raises(TemplateError):
            tds.pass_template("T")

    def test_describe(self):
        tds = self.make()
        tds.template("T", 8)
        tds.declare("X", 8)
        tds.align(ident("X", "T"))
        tds.distribute("T", [Block()], to="PR")
        text = tds.describe()
        assert "TEMPLATE T" in text and "depth 1" in text


class TestChainedAlignment:
    def test_image_composition(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        tds.declare("A", 100)
        tds.declare("B", 40)
        tds.declare("C", 20)
        tds.align(ident("B", "A", 2, 1))
        tds.align(ident("C", "B", 2))
        _, chain = tds.ultimate_base("C")
        # C(i) -> B(2i) -> A(4i + 1)
        assert chain.image((3,)) == frozenset({(13,)})
        got = chain.map_indices(np.array([[1], [2], [3]]))
        np.testing.assert_array_equal(got, [[5], [9], [13]])

    def test_mismatched_links_rejected(self):
        from repro.align.function import identity_alignment
        a = identity_alignment(IndexDomain.standard(4))
        b = identity_alignment(IndexDomain.standard(5))
        with pytest.raises(MappingError):
            ChainedAlignment([a, b])

    def test_empty_chain_rejected(self):
        with pytest.raises(MappingError):
            ChainedAlignment([])


class TestInherit:
    def make(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        tds.declare("A", 1000)
        tds.distribute("A", [Cyclic(3)], to="PR")
        return tds

    def test_section_alignment(self):
        tds = self.make()
        sec = ArraySection(tds.arrays["A"].domain, (Triplet(2, 996, 2),))
        fn = section_alignment(sec)
        assert fn.image((1,)) == frozenset({(2,)})
        assert fn.image((498,)) == frozenset({(996,)})

    def test_inherit_mapping_matches_restriction(self):
        tds = self.make()
        sec = ArraySection(tds.arrays["A"].domain, (Triplet(2, 996, 2),))
        inh = inherit_mapping(tds, "A", sec)
        a_dist = tds.distribution_of("A")
        for k in (1, 7, 250, 498):
            assert inh.owners((k,)) == a_dist.owners((2 * k,))

    def test_star_distribution_describes_base(self):
        tds = self.make()
        sec = ArraySection(tds.arrays["A"].domain, (Triplet(2, 996, 2),))
        inh = inherit_mapping(tds, "A", sec)
        inh.check_star_distribution((Cyclic(3),))
        with pytest.raises(ConformanceError):
            inh.check_star_distribution((Cyclic(4),))

    def test_inherit_through_chain(self):
        tds = self.make()
        tds.declare("B", 400)
        tds.align(ident("B", "A", 2, 5))
        inh = inherit_mapping(tds, "B")
        assert inh.ultimate_base == "A"
        assert inh.owners((3,)) == tds.owners("A", (11,))

    def test_inherit_without_distribution_fails(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        tds.template("T", 100)
        tds.declare("X", 50)
        tds.align(ident("X", "T", 2))
        with pytest.raises(TemplateError):
            inherit_mapping(tds, "X")


class TestEquivalence:
    def test_witness_strategy_thole(self):
        n = 8
        tds = TemplateDataSpace(4)
        tds.processors("PR", 2, 2)
        tds.template("T", (0, 2 * n), (0, 2 * n))
        tds.declare("U", (0, n), (1, n))
        tds.declare("V", (1, n), (0, n))
        tds.declare("P", (1, n), (1, n))
        i, j = Dummy("I"), Dummy("J")
        specs = [
            AlignSpec("P", [AxisDummy("I"), AxisDummy("J")], "T",
                      [BaseExpr(2 * i - 1), BaseExpr(2 * j - 1)]),
            AlignSpec("U", [AxisDummy("I"), AxisDummy("J")], "T",
                      [BaseExpr(2 * i), BaseExpr(2 * j - 1)]),
            AlignSpec("V", [AxisDummy("I"), AxisDummy("J")], "T",
                      [BaseExpr(2 * i - 1), BaseExpr(2 * j)]),
        ]
        for s in specs:
            tds.align(s)
        tds.distribute("T", [Cyclic(), Cyclic()], to="PR")
        assert verify_equivalence(tds, "T", specs) == {
            "P": True, "U": True, "V": True}

    def test_witness_model_structure(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        tds.template("T", 64)
        tds.declare("X", 32)
        spec = ident("X", "T", 2)
        tds.align(spec)
        tds.distribute("T", [Block()], to="PR")
        ds = derive_witness_model(tds, "T", [spec])
        assert "_W_T" in ds.arrays
        assert ds.forest.parent_of("X") == "_W_T"

    def test_general_block_derivation_with_pinned_axis(self):
        # 2-D template, one axis pinned by a dummyless subscript: the
        # derived target is a processor *section*
        tds = TemplateDataSpace(8)
        tds.processors("PR", 4, 2)
        tds.template("T", 64, 10)
        tds.declare("X", 32)
        spec = AlignSpec("X", [AxisDummy("I")], "T",
                         [BaseExpr(2 * Dummy("I")), BaseExpr(7)])
        tds.align(spec)
        tds.distribute("T", [Block(), Block()], to="PR")
        tdist = tds._dist["T"]
        fmts, target = derive_general_block_formats(
            tdist, tds._aligned_to["X"][1], tds.arrays["X"].domain)
        direct = FormatDistribution(tds.arrays["X"].domain, fmts,
                                    target, tds.ap)
        assert mappings_equivalent(direct, tds.distribution_of("X"))
        assert target.rank == 1      # pinned axis consumed

    def test_general_block_refuses_cyclic(self):
        tds = TemplateDataSpace(4)
        tds.processors("PR", 4)
        tds.template("T", 64)
        tds.declare("X", 32)
        tds.align(ident("X", "T", 2))
        tds.distribute("T", [Cyclic()], to="PR")
        with pytest.raises(MappingError):
            derive_general_block_formats(
                tds._dist["T"], tds._aligned_to["X"][1],
                tds.arrays["X"].domain)
