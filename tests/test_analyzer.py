"""Unit tests for the program analyzer/executor (S7)."""

import numpy as np
import pytest

from repro.directives.analyzer import run_program
from repro.errors import DirectiveError, TemplateError


class TestDeclarationsAndEnv:
    def test_parameter_and_bounds(self):
        res = run_program("""
      PARAMETER (N = 8)
      REAL A(2*N)
""")
        assert res.ds.arrays["A"].domain.shape == (16,)

    def test_inputs_as_constants(self):
        res = run_program("REAL A(N)", inputs={"N": 5})
        assert res.ds.arrays["A"].domain.shape == (5,)

    def test_read_binds_inputs(self):
        res = run_program("""
      READ 6,M,N
      REAL A(M, N)
""", inputs={"M": 3, "N": 4})
        assert res.ds.arrays["A"].domain.shape == (3, 4)

    def test_read_missing_input(self):
        with pytest.raises(DirectiveError):
            run_program("READ 6,Z")

    def test_unresolvable_bound(self):
        with pytest.raises(DirectiveError):
            run_program("REAL A(Q)")

    def test_integer_array_from_inputs(self):
        res = run_program("INTEGER S(1:3)", inputs={"S": [3, 6, 9]})
        np.testing.assert_array_equal(res.int_arrays["S"], [3, 6, 9])

    def test_deferred_shape_requires_allocatable(self):
        with pytest.raises(DirectiveError):
            run_program("REAL A(:)")


class TestDirectives:
    def test_template_rejected_in_paper_model(self):
        # the whole point of the paper
        with pytest.raises(DirectiveError):
            run_program("!HPF$ TEMPLATE T(100)")

    def test_template_ok_in_baseline(self):
        res = run_program("!HPF$ TEMPLATE T(100)", model="template")
        assert "T" in res.ds.templates

    def test_dynamic_rejected_in_baseline(self):
        with pytest.raises(TemplateError):
            run_program("""
      REAL A(10)
!HPF$ DYNAMIC A
""", model="template")

    def test_star_form_rejected_in_main_program(self):
        with pytest.raises(DirectiveError):
            run_program("""
      REAL A(10)
!HPF$ DISTRIBUTE A *
""")

    def test_cyclic_k_from_env(self):
        res = run_program("""
      PARAMETER (K = 3)
      REAL A(30)
!HPF$ PROCESSORS PR(5)
!HPF$ DISTRIBUTE A(CYCLIC(K)) TO PR
""", n_processors=5)
        assert res.ds.owners("A", (4,)) == frozenset({1})

    def test_align_dummy_name_rewrite(self):
        # N is a constant, I is a dummy: the analyzer must tell them apart
        res = run_program("""
      REAL A(16), B(8)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(BLOCK) TO PR
!HPF$ ALIGN B(I) WITH A(I+N)
""", n_processors=4, inputs={"N": 8})
        assert res.ds.owners("B", (1,)) == res.ds.owners("A", (9,))

    def test_section_target_with_env(self):
        res = run_program("""
      PARAMETER (NOP = 8)
      REAL B(40)
!HPF$ PROCESSORS Q(16)
!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
""", n_processors=16)
        assert set(res.ds.distribution_of("B").processors()) == {0, 2, 4, 6}


class TestExecution:
    def test_sequential_assignment(self):
        res = run_program("""
      REAL A(8), B(8)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE (BLOCK) :: A, B
      B = A + 1
""", n_processors=4)
        np.testing.assert_array_equal(res.ds.arrays["B"].data,
                                      np.ones(8))

    def test_machine_execution_produces_report(self):
        res = run_program("""
      REAL A(64), B(64)
!HPF$ PROCESSORS PR(8)
!HPF$ DISTRIBUTE A(BLOCK) TO PR
!HPF$ DISTRIBUTE B(CYCLIC) TO PR
      B = A
""", n_processors=8, machine=True)
        assert len(res.reports) == 1
        rep = res.reports[0]
        assert rep.total_words > 0
        assert res.machine.stats.total_words == rep.total_words

    def test_section_assignment(self):
        res = run_program("""
      REAL A(10), B(10)
!HPF$ PROCESSORS PR(2)
!HPF$ DISTRIBUTE (BLOCK) :: A, B
      A = 2
      B(1:5) = A(6:10)
""", n_processors=2)
        data = res.ds.arrays["B"].data
        np.testing.assert_array_equal(data[:5], 2 * np.ones(5))
        np.testing.assert_array_equal(data[5:], np.zeros(5))

    def test_assignment_rejected_in_baseline(self):
        with pytest.raises(TemplateError):
            run_program("""
      REAL A(4), B(4)
      B = A
""", model="template")

    def test_snapshots_trace_forest(self):
        res = run_program("""
      REAL A(16), B(16)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(BLOCK) TO PR
!HPF$ ALIGN B(I) WITH A(I)
""", n_processors=4)
        final_line, final_trees = res.snapshots[-1]
        assert final_trees == {"A": frozenset({"B"})}

    def test_unknown_array_in_statement(self):
        with pytest.raises(DirectiveError):
            run_program("Z(1:3) = Z(2:4)")
