"""Unit tests for the machine simulator (S8)."""

import numpy as np
import pytest

from repro.distributions.block import Block
from repro.distributions.distribution import FormatDistribution
from repro.distributions.replicated import ReplicatedDistribution
from repro.errors import MachineError
from repro.fortran.domain import IndexDomain
from repro.machine import collectives
from repro.machine.config import MachineConfig
from repro.machine.memory import LocalMemory
from repro.machine.message import Message
from repro.machine.metrics import CommStats
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement
from repro.processors.section import ProcessorSection
from repro.processors.topology import Line


class TestConfig:
    def test_message_cost_linear(self):
        c = MachineConfig(4, alpha=10, beta=2)
        assert c.message_cost(0, 1, 5) == 20.0
        assert c.message_cost(0, 0, 5) == 0.0
        assert c.message_cost(0, 1, 0) == 0.0

    def test_hop_scaling(self):
        c = MachineConfig(4, alpha=10, beta=0, hop_factor=0.5,
                          topology=Line(4))
        assert c.message_cost(0, 1, 1) == 10.0            # 1 hop: base
        assert c.message_cost(0, 3, 1) == 10.0 * 2.0      # 3 hops: +2*0.5

    def test_topology_size_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(4, topology=Line(8))

    def test_compute_cost(self):
        c = MachineConfig(4, flop=0.5)
        assert c.compute_cost(10) == 5.0


class TestCommStats:
    def test_record_and_totals(self):
        s = CommStats(4)
        s.record_message(Message(0, 1, 10))
        s.record_message(Message(1, 2, 5))
        s.record_message(Message(2, 2, 99))   # self message ignored
        assert s.total_messages == 2 and s.total_words == 15
        assert s.msgs_sent[0] == 1 and s.words_recv[1] == 10

    def test_locality(self):
        s = CommStats(4)
        s.record_refs(local=30, off=10)
        assert s.locality == 0.75
        assert CommStats(4).locality == 1.0

    def test_load_imbalance(self):
        s = CommStats(4)
        s.local_ops += np.array([10, 10, 10, 30])
        assert s.load_imbalance == pytest.approx(30 / 15)

    def test_estimated_time_is_max_processor(self):
        s = CommStats(2)
        s.record_message(Message(0, 1, 100))
        s.local_ops += np.array([0, 1000])
        c = MachineConfig(2, alpha=10, beta=1, flop=1)
        # proc 1: 1000 flop + 1 msg recv (10) + 100 words = 1110
        assert s.estimated_time(c) == pytest.approx(1110.0)

    def test_merge(self):
        a = CommStats(4)
        a.record_message(Message(0, 1, 10))
        b = CommStats(4)
        b.record_message(Message(1, 0, 4))
        a.merge(b)
        assert a.total_words == 14

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            CommStats(4).merge(CommStats(8))


class TestCollectives:
    def test_broadcast_log_rounds(self):
        c = MachineConfig(8, alpha=10, beta=1)
        time, words = collectives.broadcast(c, 100)
        assert time == 3 * 110 and words == 700

    def test_gather_volume_doubles(self):
        c = MachineConfig(4, alpha=0, beta=1)
        time, words = collectives.gather(c, 10)
        assert time == 10 + 20 and words == 30

    def test_alltoall(self):
        c = MachineConfig(4, alpha=1, beta=1)
        time, words = collectives.alltoall(c, 5)
        assert time == 3 * 6 and words == 60

    def test_single_processor_free(self):
        c = MachineConfig(1)
        assert collectives.broadcast(c, 100) == (0.0, 0)


class TestSimulator:
    def test_send_and_ledger(self, machine8):
        machine8.send(0, 3, 12, tag="t")
        assert machine8.ledger == [Message(0, 3, 12, "t")]
        assert machine8.stats.total_words == 12
        assert machine8.elapsed > 0

    def test_self_send_ignored(self, machine8):
        machine8.send(2, 2, 100)
        assert machine8.ledger == []

    def test_out_of_range_send(self, machine8):
        with pytest.raises(MachineError):
            machine8.send(0, 9, 1)

    def test_exchange_matrix(self, machine8):
        m = np.zeros((8, 8), dtype=int)
        m[0, 1] = 5
        m[3, 2] = 7
        m[4, 4] = 9      # diagonal ignored
        machine8.exchange(m)
        assert machine8.stats.total_messages == 2
        assert machine8.stats.total_words == 12

    def test_exchange_shape_check(self, machine8):
        with pytest.raises(MachineError):
            machine8.exchange(np.zeros((4, 4)))

    def test_compute_charges_max(self, machine8):
        machine8.compute(np.array([1, 2, 3, 4, 0, 0, 0, 0]))
        assert machine8.elapsed == pytest.approx(
            machine8.config.flop * 4)

    def test_reset(self, machine8):
        machine8.send(0, 1, 5)
        machine8.reset()
        assert machine8.stats.total_words == 0 and machine8.ledger == []


class TestLocalMemory:
    def make_dist(self):
        ap = AbstractProcessors(4)
        pr = ap.declare(ProcessorArrangement("PR",
                                             IndexDomain.standard(4)))
        return FormatDistribution(IndexDomain.standard(16), [Block()],
                                  ProcessorSection(pr), ap)

    def test_host_and_extents(self):
        dist = self.make_dist()
        mem = LocalMemory(1)
        mem.host("A", dist)
        assert mem.extents["A"] == 4
        assert mem.footprint == 4
        assert mem.owns_position("A", 4)
        assert not mem.owns_position("A", 0)

    def test_replicated_hosting(self):
        rep = ReplicatedDistribution(IndexDomain.standard(6), [0, 2])
        mem0, mem1 = LocalMemory(0), LocalMemory(1)
        mem0.host("R", rep)
        mem1.host("R", rep)
        assert mem0.extents["R"] == 6
        assert mem1.extents["R"] == 0

    def test_machine_hosting(self, machine8):
        ap = AbstractProcessors(8)
        pr = ap.declare(ProcessorArrangement("PR",
                                             IndexDomain.standard(8)))
        dist = FormatDistribution(IndexDomain.standard(32), [Block()],
                                  ProcessorSection(pr), ap)
        machine8.host_array("A", dist)
        np.testing.assert_array_equal(machine8.footprints(),
                                      [4] * 8)
        machine8.drop_array("A")
        assert machine8.footprints().sum() == 0

    def test_unknown_array_query(self):
        mem = LocalMemory(0)
        with pytest.raises(MachineError):
            mem.owns_position("Z", 0)
