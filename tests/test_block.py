"""Unit tests for BLOCK distributions (§4.1.1 + Vienna variant)."""

import numpy as np
import pytest

from repro.distributions.block import Block, BlockVariant
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet


class TestHpfBlock:
    def test_paper_formula(self):
        # §4.1.1: q = ceil(N/NP); delta(i) = {ceil(i/q)} (1-based)
        n, np_ = 10, 4
        bd = Block().bind(Triplet(1, n), np_)
        q = -(-n // np_)
        assert bd.block_size == q == 3
        for i in range(1, n + 1):
            assert bd.owner_coord(i) + 1 == -(-i // q)

    def test_paper_local_index(self):
        # §4.1.1: local index of A(i) on R(j) is i - (j-1)*q
        bd = Block().bind(Triplet(1, 10), 4)
        for i in range(1, 11):
            j = bd.owner_coord(i) + 1
            assert bd.paper_local_index(i) == i - (j - 1) * bd.block_size
            assert bd.local_index(i) == bd.paper_local_index(i) - 1

    def test_trailing_processor_can_be_empty(self):
        # N=10, NP=4, q=3 -> blocks 3,3,3,1; N=9, NP=4, q=3 -> 3,3,3,0
        bd = Block().bind(Triplet(1, 9), 4)
        assert bd.owned(3) == ()
        assert bd.local_extent(3) == 0
        assert [bd.local_extent(p) for p in range(4)] == [3, 3, 3, 0]

    def test_owned_blocks_partition_domain(self):
        bd = Block().bind(Triplet(1, 10), 4)
        covered = []
        for p in range(4):
            for t in bd.owned(p):
                covered.extend(t)
        assert covered == list(range(1, 11))

    def test_nonunit_lower_bound(self):
        # the staggered grid's U(0:N)
        bd = Block().bind(Triplet(0, 8), 3)
        assert bd.owner_coord(0) == 0
        assert bd.owner_coord(8) == 2
        assert bd.owned(0) == (Triplet(0, 2, 1),)

    def test_vectorized_owner_matches_scalar(self):
        bd = Block().bind(Triplet(0, 100), 7)
        values = np.arange(0, 101)
        got = bd.owner_coord_array(values)
        expected = [bd.owner_coord(int(v)) for v in values]
        np.testing.assert_array_equal(got, expected)

    def test_global_local_roundtrip(self):
        bd = Block().bind(Triplet(1, 17), 4)
        for p in range(4):
            for t in bd.owned(p):
                for i in t:
                    assert bd.global_index(p, bd.local_index(i)) == i

    def test_global_index_bad_local(self):
        bd = Block().bind(Triplet(1, 10), 4)
        with pytest.raises(DistributionError):
            bd.global_index(0, 3)

    def test_explicit_block_size(self):
        bd = Block(size=5).bind(Triplet(1, 20), 4)
        assert bd.block_size == 5
        assert Block(size=5).is_extension

    def test_explicit_size_too_small(self):
        with pytest.raises(DistributionError):
            Block(size=2).bind(Triplet(1, 20), 4)

    def test_bad_size_rejected(self):
        with pytest.raises(DistributionError):
            Block(size=0)

    def test_empty_dim_rejected(self):
        with pytest.raises(DistributionError):
            Block().bind(Triplet(1, 0), 4)

    def test_strided_dim_rejected(self):
        with pytest.raises(DistributionError):
            Block().bind(Triplet(1, 10, 2), 4)


class TestViennaBlock:
    def test_balanced_sizes(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 10), 4)
        assert [bd.local_extent(p) for p in range(4)] == [3, 3, 2, 2]

    def test_divisible_matches_hpf(self):
        h = Block().bind(Triplet(1, 16), 4)
        v = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 16), 4)
        for i in range(1, 17):
            assert h.owner_coord(i) == v.owner_coord(i)

    def test_every_processor_nonempty_when_n_ge_np(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 9), 4)
        assert all(bd.local_extent(p) >= 1 for p in range(4))

    def test_fewer_elements_than_processors(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 3), 5)
        assert [bd.local_extent(p) for p in range(5)] == [1, 1, 1, 0, 0]

    def test_owner_array_matches_scalar(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(0, 52), 7)
        vals = np.arange(0, 53)
        np.testing.assert_array_equal(
            bd.owner_coord_array(vals),
            [bd.owner_coord(int(v)) for v in vals])

    def test_partition_contiguous_and_total(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 23), 5)
        covered = []
        for p in range(5):
            blocks = bd.owned(p)
            assert len(blocks) <= 1
            for t in blocks:
                covered.extend(t)
        assert covered == list(range(1, 24))

    def test_roundtrip(self):
        bd = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, 23), 5)
        for p in range(5):
            for t in bd.owned(p):
                for i in t:
                    assert bd.owner_coord(i) == p
                    assert bd.global_index(p, bd.local_index(i)) == i

    def test_footnote_boundary_stability(self):
        # §8 footnote mechanism: Vienna partitions of N and N+1 elements
        # never drift by more than one owner
        for n in (12, 15, 16, 17, 20):
            bp = Block(variant=BlockVariant.VIENNA).bind(Triplet(1, n), 4)
            bu = Block(variant=BlockVariant.VIENNA).bind(Triplet(0, n), 4)
            drift = max(abs(bu.owner_coord(i) - bp.owner_coord(i))
                        for i in range(1, n + 1))
            assert drift <= 1
