"""Property test: lazy Session-path execution is bit-identical to the
eager old-path execution over the 50-seed differential corpus.

Each randomized case of :mod:`test_differential_random` is rebuilt two
ways from identical initial data:

* **eager** — the pre-refactor front door: a hand-built
  :class:`DataSpace` driven statement-by-statement through
  :class:`SimulatedExecutor`;
* **lazy** — the Session front door: fluent ``.distribute()``/
  ``.align()`` mapping calls, the statement recorded through the
  NumPy-flavored indexing (when expressible) or ``session.record``,
  and one ``session.run()`` lowering through the IR pipeline.

The assertions: numerics, per-statement words matrices, per-processor
machine counters, pattern attribution and modeled elapsed time are all
bit-identical — the API redesign changed where programs enter, not what
they cost.
"""

import numpy as np
import pytest

import test_differential_random as corpus

from repro.api import Session
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


def _session_for(case: dict) -> Session:
    """Rebuild a corpus case through the Session front door."""
    s = Session(case["p"], machine=MachineConfig(case["p"]))
    pr = s.processors("PR", case["p"])
    rng = np.random.default_rng(case["data_seed"])
    handles = {}
    for name, size, spec in case["arrays"]:
        h = s.array(name, size)
        if spec[0] == "aligned":
            h.align(handles["A"], lambda I, off=spec[1]: I + off)
        else:
            h.distribute(corpus._build_format(spec), to=pr)
        h.data[:] = rng.uniform(-8.0, 8.0, size=size)
        handles[name] = h
    return s


@pytest.mark.parametrize("seed", range(corpus.N_CASES))
def test_lazy_session_matches_eager_path(seed):
    case = corpus._case(seed)
    stmt = corpus._statement(case)
    p = case["p"]

    # eager old path
    ds_eager = corpus._materialize(case)
    machine_eager = DistributedMachine(MachineConfig(p))
    eager_report = SimulatedExecutor(ds_eager, machine_eager).execute(stmt)

    # lazy Session path, statement built through the fluent indexing
    # (corpus sections are 1-based with unit lower bounds, so the
    # NumPy-flavored slice is the triplet shifted down by one)
    s = _session_for(case)

    def ref(name, t):
        lo, hi, stride = t
        from repro.api.array import DistributedArray
        handle = DistributedArray(s, name)
        return handle[lo - 1:hi:stride]

    lhs_name, lhs_t = case["lhs"]
    refs = [ref(nm, t) for nm, t in case["refs"]]
    if len(refs) == 1:
        rhs = refs[0] if case["shape"] == 0 else refs[0] * 2.0 + 1.0
    else:
        rhs = (refs[0] + refs[1] if case["shape"] == 0
               else refs[0] * 2.0 - refs[1])
    lazy_stmt = Assignment(ref(lhs_name, lhs_t), rhs)
    assert lazy_stmt == stmt, \
        f"seed {seed}: fluent indexing built a different statement"
    s.record(lazy_stmt)
    result = s.run()
    lazy_report = result.reports[0]

    # numerics bit-identical for every array
    for name in ds_eager.arrays:
        np.testing.assert_array_equal(
            s.ds.arrays[name].data, ds_eager.arrays[name].data,
            err_msg=f"seed {seed}: lazy numerics diverge on {name}")

    # words matrices, counters, patterns, time: bit-identical
    np.testing.assert_array_equal(lazy_report.words, eager_report.words)
    assert lazy_report.patterns == eager_report.patterns
    assert lazy_report.words_by_pattern() == \
        eager_report.words_by_pattern()
    np.testing.assert_array_equal(s.machine.stats.words_sent,
                                  machine_eager.stats.words_sent)
    np.testing.assert_array_equal(s.machine.stats.words_recv,
                                  machine_eager.stats.words_recv)
    np.testing.assert_array_equal(s.machine.stats.msgs_sent,
                                  machine_eager.stats.msgs_sent)
    assert s.machine.stats.pattern_words == \
        machine_eager.stats.pattern_words
    assert s.machine.stats.pattern_msgs == \
        machine_eager.stats.pattern_msgs
    assert s.machine.elapsed == machine_eager.elapsed


def test_session_materialization_matches_eager_dataspace():
    """The fluent mapping calls reproduce the eager scopes exactly:
    same owner maps for every array of every corpus case."""
    for seed in range(0, corpus.N_CASES, 7):
        case = corpus._case(seed)
        ds_eager = corpus._materialize(case)
        s = _session_for(case)
        for name in ds_eager.arrays:
            np.testing.assert_array_equal(
                s.ds.owner_map(name), ds_eager.owner_map(name),
                err_msg=f"seed {seed}: owner maps diverge on {name}")
