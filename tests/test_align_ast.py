"""Unit tests for the alignment expression AST (§5.1 expression language)."""

import numpy as np
import pytest

from repro.align.ast import (
    BinOp,
    Call,
    Const,
    Dummy,
    Name,
    affine_coefficients,
    dummies_in,
    fold_constants,
    names_in,
)
from repro.errors import AlignmentError


class TestEvaluation:
    def test_const(self):
        assert Const(5).evaluate({}) == 5

    def test_dummy_binding(self):
        assert Dummy("I").evaluate({"I": 7}) == 7

    def test_unbound_dummy(self):
        with pytest.raises(AlignmentError):
            Dummy("I").evaluate({})

    def test_operator_sugar(self):
        # 2*I - 1, the staggered-grid alignment
        expr = 2 * Dummy("I") - 1
        assert expr.evaluate({"I": 5}) == 9

    def test_rsub_radd(self):
        expr = 10 - Dummy("I") + 1
        assert expr.evaluate({"I": 3}) == 8

    def test_disallowed_operator(self):
        with pytest.raises(AlignmentError):
            BinOp("/", Const(4), Const(2))

    def test_max_min(self):
        expr = Call("MAX", [Const(1), Dummy("J") - 1])
        assert expr.evaluate({"J": 1}) == 1
        assert expr.evaluate({"J": 5}) == 4
        expr2 = Call("MIN", [Const(10), Dummy("J") + 1])
        assert expr2.evaluate({"J": 10}) == 10

    def test_max_needs_two_args(self):
        with pytest.raises(AlignmentError):
            Call("MAX", [Const(1)])

    def test_unknown_intrinsic(self):
        with pytest.raises(AlignmentError):
            Call("MOD", [Const(1), Const(2)])

    def test_vectorized_evaluation(self):
        expr = 2 * Dummy("I") - 1
        vals = expr.evaluate({"I": np.arange(1, 6)})
        np.testing.assert_array_equal(vals, [1, 3, 5, 7, 9])

    def test_vectorized_max(self):
        expr = Call("MAX", [Const(3), Dummy("I")])
        vals = expr.evaluate({"I": np.arange(1, 6)})
        np.testing.assert_array_equal(vals, [3, 3, 3, 4, 5])

    def test_name_resolution(self):
        expr = Name("N") * Dummy("I")
        assert expr.evaluate({"N": 4, "I": 3}) == 12

    def test_inquiry_via_env(self):
        expr = Call("UBOUND", [Name("A"), Const(1)])
        assert expr.evaluate({"UBOUND(A, 1)": 64}) == 64
        with pytest.raises(AlignmentError):
            expr.evaluate({})


class TestAnalysis:
    def test_dummies_in(self):
        expr = Call("MAX", [Dummy("I") + 1, Name("N") - Dummy("J")])
        assert dummies_in(expr) == {"I", "J"}

    def test_names_in(self):
        expr = Name("N") * Dummy("I") + Name("M")
        assert names_in(expr) == {"N", "M"}

    def test_fold_constants_full(self):
        expr = Name("N") * 2 + 1
        assert fold_constants(expr, {"N": 8}) == Const(17)

    def test_fold_constants_partial(self):
        expr = (Name("N") - 1) * Dummy("I")
        folded = fold_constants(expr, {"N": 5})
        assert folded.evaluate({"I": 2}) == 8
        assert affine_coefficients(folded, "I") == (4, 0)

    def test_fold_leaves_unknown_names(self):
        expr = Name("Q") + 1
        assert names_in(fold_constants(expr, {})) == {"Q"}

    def test_fold_inquiry(self):
        expr = Call("SIZE", [Name("A"), Const(1)]) - 1
        assert fold_constants(expr, {"SIZE(A, 1)": 10}) == Const(9)


class TestAffineCoefficients:
    def test_simple(self):
        assert affine_coefficients(Dummy("I"), "I") == (1, 0)
        assert affine_coefficients(Const(7), "I") == (0, 7)

    def test_paper_examples(self):
        assert affine_coefficients(2 * Dummy("I") - 1, "I") == (2, -1)
        assert affine_coefficients(2 * Dummy("I"), "I") == (2, 0)

    def test_nested(self):
        expr = 3 * (Dummy("I") + 2) - (Dummy("I") - 1)
        assert affine_coefficients(expr, "I") == (2, 7)

    def test_mul_by_dummy_on_right(self):
        assert affine_coefficients(Const(3) * Dummy("I"), "I") == (3, 0)

    def test_quadratic_not_affine(self):
        assert affine_coefficients(Dummy("I") * Dummy("I"), "I") is None

    def test_max_not_affine(self):
        assert affine_coefficients(
            Call("MAX", [Const(1), Dummy("I")]), "I") is None

    def test_other_dummy_not_affine(self):
        assert affine_coefficients(Dummy("J"), "I") is None

    def test_unfolded_name_not_affine(self):
        assert affine_coefficients(Name("N") + Dummy("I"), "I") is None


class TestEqualityHash:
    def test_structural_equality(self):
        assert 2 * Dummy("I") - 1 == 2 * Dummy("I") - 1
        assert 2 * Dummy("I") - 1 != 2 * Dummy("J") - 1

    def test_hashable(self):
        s = {2 * Dummy("I"), 2 * Dummy("I"), Const(1)}
        assert len(s) == 2
