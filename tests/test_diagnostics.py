"""Golden tests for the static analyzer and the diagnostics vocabulary.

Every stable code in :data:`repro.engine.diagnostics.CODES` gets at
least one positive (the finding fires, with its code and severity
locked) and one negative (the nearby-correct program stays clean), so
a behaviour change in any check shows up as a golden diff rather than
a silent drift.  On top: the renderers, the exception bridge, the
Session/service/CLI surfaces of ``repro lint``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.replicated import ReplicatedFormat
from repro.engine.analysis import analyze, assert_window_race_free
from repro.engine.assignment import Assignment
from repro.engine.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticError,
    Severity,
    Span,
    has_errors,
    render_json,
    render_text,
)
from repro.engine.expr import ArrayRef
from repro.engine.ir import ProgramGraph, RedistributeNode
from repro.errors import DirectiveError
from repro.fortran.triplet import Triplet


def _scope(p: int = 4) -> DataSpace:
    ds = DataSpace(p)
    ds.processors("PR", p)
    return ds


def _block(ds: DataSpace, name: str, n: int, **kwargs) -> None:
    ds.declare(name, n, **kwargs)
    ds.distribute(name, [Block()], to="PR")


def _assign(lhs, rhs) -> Assignment:
    return Assignment(lhs if isinstance(lhs, ArrayRef) else ArrayRef(lhs),
                      rhs if not isinstance(rhs, str) else ArrayRef(rhs))


def codes(diagnostics) -> list[str]:
    return [d.code for d in diagnostics]


# ----------------------------------------------------------------------
# The vocabulary itself
# ----------------------------------------------------------------------
def test_registry_is_complete_and_typed():
    assert len(CODES) >= 18
    for code, (severity, title) in CODES.items():
        assert code.startswith("RPR") and len(code) == 6
        assert isinstance(severity, Severity)
        assert title


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("RPR999", "nope")


def test_span_render_precedence():
    assert Span(line=7).render() == "line 7"
    assert Span(line=7, column=3).render() == "line 7:3"
    assert Span(statement=2).render() == "stmt 2"
    assert Span().render() == "program"
    assert Span(line=7, statement=2).render() == "line 7"


def test_diagnostic_render_and_json():
    d = Diagnostic("RPR020", "moves a lot",
                   span=Span(statement=1, label="B = A"),
                   array="A", words=48)
    assert d.severity is Severity.PERF
    assert d.title == CODES["RPR020"][1]
    text = d.render()
    assert "stmt 1: perf RPR020: moves a lot" in text
    assert "in: B = A" in text
    payload = d.to_json()
    assert payload == {"code": "RPR020", "severity": "perf",
                       "message": "moves a lot",
                       "span": {"statement": 1, "label": "B = A"},
                       "array": "A", "words": 48}


def test_render_text_tally_and_clean():
    out = render_text([])
    assert out == "clean"
    ds = [Diagnostic("RPR001", "a"), Diagnostic("RPR001", "b"),
          Diagnostic("RPR011", "c")]
    out = render_text(ds, prefix="  ")
    assert out.splitlines()[-1] == "  2 errors, 1 warning"
    assert all(line.startswith("  ") for line in out.splitlines())


def test_render_json_counts():
    payload = json.loads(render_json(
        [Diagnostic("RPR001", "a"), Diagnostic("RPR013", "b"),
         Diagnostic("RPR021", "c")], file="x.hpf"))
    assert payload["errors"] == 1
    assert payload["warnings"] == 1
    assert payload["perf"] == 1
    assert payload["file"] == "x.hpf"
    assert [d["code"] for d in payload["diagnostics"]] \
        == ["RPR001", "RPR013", "RPR021"]


def test_from_exception_bridges_codes():
    exc = DirectiveError("bad token", line=3, code="RPR100")
    d = Diagnostic.from_exception(exc)
    assert (d.code, d.span.line) == ("RPR100", 3)
    # uncoded and unknown-coded exceptions fold to the generic code
    assert Diagnostic.from_exception(ValueError("x")).code == "RPR100"
    exc2 = DirectiveError("odd", code=None)
    exc2.code = "NOT-A-CODE"
    assert Diagnostic.from_exception(exc2).code == "RPR100"


def test_diagnostic_error_wraps_batches():
    batch = [Diagnostic("RPR013", "warn"),
             Diagnostic("RPR004", "no instance"),
             Diagnostic("RPR003", "after dealloc")]
    err = DiagnosticError(batch)
    assert isinstance(err, DirectiveError)      # old handlers keep working
    assert err.code == "RPR004"                 # first *error*, not warning
    assert "+1 more" in str(err)
    assert err.diagnostics == batch
    assert has_errors(batch)
    assert not has_errors([Diagnostic("RPR013", "warn")])


# ----------------------------------------------------------------------
# Golden positives + negatives, one per analyzer code
# ----------------------------------------------------------------------
def test_rpr001_unknown_array():
    ds = _scope()
    _block(ds, "A", 8)
    g = ProgramGraph()
    g.assign(_assign("A", "GHOST"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR001"]
    assert diags[0].severity is Severity.ERROR
    assert diags[0].array == "GHOST"
    g2 = ProgramGraph()
    g2.redistribute("PHANTOM", (Cyclic(),), to="PR")
    assert codes(analyze(ds, g2)) == ["RPR001"]


def test_rpr002_subscript_bounds():
    ds = _scope()
    _block(ds, "A", 8)
    _block(ds, "B", 8)
    g = ProgramGraph()
    g.assign(_assign(ArrayRef("A", (9,)), ArrayRef("B", (1,))))
    g.assign(_assign(ArrayRef("A", (Triplet(1, 9),)),
                     ArrayRef("B", (Triplet(1, 9),))))
    g.assign(_assign(ArrayRef("A", (1, 1)), ArrayRef("B", (1,))))  # rank
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR002"] * 4
    # in-domain references are clean
    g_ok = ProgramGraph()
    g_ok.assign(_assign(ArrayRef("A", (Triplet(1, 8),)),
                        ArrayRef("B", (Triplet(1, 8),))))
    assert analyze(ds, g_ok) == []


def test_rpr003_use_after_deallocate():
    ds = _scope()
    _block(ds, "B", 8)
    ds.declare("W", rank=1, allocatable=True)
    g = ProgramGraph()
    g.allocate("W", 8)
    g.assign(_assign("W", "B"))
    g.deallocate("W")
    g.assign(_assign("B", "W"))
    assert codes(analyze(ds, g)) == ["RPR003"]
    # the same lifecycle with the read before the DEALLOCATE is clean
    g_ok = ProgramGraph()
    g_ok.allocate("W", 8)
    g_ok.assign(_assign("W", "B"))
    g_ok.assign(_assign("B", "W"))
    g_ok.deallocate("W")
    assert analyze(ds, g_ok) == []


def test_rpr004_never_allocated():
    ds = _scope()
    _block(ds, "B", 8)
    ds.declare("W", rank=1, allocatable=True)
    g = ProgramGraph()
    g.assign(_assign("B", "W"))
    assert codes(analyze(ds, g)) == ["RPR004"]


def test_rpr005_shape_conformance():
    ds = _scope()
    _block(ds, "A", 8)
    _block(ds, "B", 4)
    g = ProgramGraph()
    g.assign(_assign("A", "B"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR005"]
    assert "(8,)" in diags[0].message and "(4,)" in diags[0].message
    # matching sections conform; scalar factors always conform
    g_ok = ProgramGraph()
    g_ok.assign(_assign(ArrayRef("A", (Triplet(1, 4),)),
                        ArrayRef("B") * 2.0))
    assert analyze(ds, g_ok) == []


def test_rpr006_remap_of_static_array():
    ds = _scope()
    _block(ds, "A", 8)
    g = ProgramGraph()
    g.redistribute("A", (Cyclic(),), to="PR")
    diags = analyze(ds, g, perf=False)
    assert codes(diags) == ["RPR006"]
    # declared DYNAMIC: legal
    ds2 = _scope()
    _block(ds2, "A", 8, dynamic=True)
    g2 = ProgramGraph()
    g2.redistribute("A", (Cyclic(),), to="PR")
    g2.assign(_assign(ArrayRef("A", (1,)), ArrayRef("A", (2,))))
    assert codes(analyze(ds2, g2, perf=False)) == []


def test_rpr007_loop_carried_allocation():
    ds = _scope()
    ds.declare("W", rank=1, allocatable=True)
    from repro.engine.ir import AllocateNode, DeallocateNode
    g = ProgramGraph()
    g.loop(3, [AllocateNode("W", (8,))])
    diags = analyze(ds, g)
    assert "RPR007" in codes(diags)
    d = next(d for d in diags if d.code == "RPR007")
    assert d.array == "W" and "trip 2 of 3" in d.message
    # a balanced ALLOCATE/DEALLOCATE pair per trip is clean
    g_ok = ProgramGraph()
    g_ok.loop(3, [AllocateNode("W", (8,)), DeallocateNode("W")])
    assert analyze(ds, g_ok) == []


def test_rpr008_allocate_misuse():
    ds = _scope()
    _block(ds, "A", 8)
    ds.declare("W", rank=1, allocatable=True)
    g = ProgramGraph()
    g.allocate("W", 8)
    g.allocate("W", 8)          # double ALLOCATE
    g.deallocate("W")
    g.deallocate("W")           # DEALLOCATE of unallocated
    g.allocate("A", 8)          # not ALLOCATABLE (and already allocated:
    #                             one finding per node, not per reason)
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR008"] * 3
    assert "already allocated" in diags[0].message
    assert "not allocated" in diags[1].message
    assert "not declared ALLOCATABLE" in diags[2].message


def test_rpr009_is_the_race_code():
    with pytest.raises(DiagnosticError) as exc:
        assert_window_race_free([_assign("A", "B"), _assign("C", "A")])
    assert codes(exc.value.diagnostics) == ["RPR009"]
    assert CODES["RPR009"][0] is Severity.ERROR


def test_rpr010_read_of_never_written_allocation():
    ds = _scope()
    _block(ds, "B", 8)
    ds.declare("W", rank=1, allocatable=True)
    g = ProgramGraph()
    g.allocate("W", 8)
    g.assign(_assign("B", "W"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR010"]
    assert diags[0].severity is Severity.WARNING
    # write-then-read is clean; pre-existing arrays are never flagged
    g_ok = ProgramGraph()
    g_ok.allocate("W", 8)
    g_ok.assign(_assign("W", "B"))
    g_ok.assign(_assign("B", "W"))
    assert analyze(ds, g_ok) == []


def test_rpr011_zero_trip_loop():
    ds = _scope()
    _block(ds, "A", 8)
    _block(ds, "B", 8)
    g = ProgramGraph()
    g.loop(0, [_assign("A", "B")])
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR011"]
    g_ok = ProgramGraph()
    g_ok.loop(1, [_assign("A", "B")])
    assert analyze(ds, g_ok) == []


def test_rpr011_dead_body_state_does_not_leak():
    ds = _scope()
    _block(ds, "B", 8)
    ds.declare("W", rank=1, allocatable=True)
    g = ProgramGraph()
    from repro.engine.ir import AllocateNode
    g.loop(0, [AllocateNode("W", (8,))])
    g.assign(_assign("B", "W"))     # W still unallocated: RPR004
    assert codes(analyze(ds, g)) == ["RPR011", "RPR004"]


def test_rpr012_dead_remap():
    ds = _scope()
    _block(ds, "A", 64, dynamic=True)
    _block(ds, "B", 64)
    g = ProgramGraph()
    g.redistribute("A", (Cyclic(),), to="PR")   # replaced before any use
    g.redistribute("A", (Block(),), to="PR")
    g.assign(_assign("B", "A"))
    diags = [d for d in analyze(ds, g, perf=False)]
    assert codes(diags) == ["RPR012"]
    assert diags[0].span.statement == 0
    # a trailing remap survives the program for the session scope
    # (owners() queries, later run() segments): live, not dead
    g_ok = ProgramGraph()
    g_ok.assign(_assign("B", "A"))
    g_ok.redistribute("A", (Cyclic(),), to="PR")
    assert analyze(ds, g_ok, perf=False) == []


def test_rpr013_replicated_write():
    ds = _scope()
    ds.declare("R", 16)
    ds.distribute("R", [ReplicatedFormat()], to="PR")
    _block(ds, "B", 16)
    g = ProgramGraph()
    g.assign(_assign("R", "B"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR013"]
    assert diags[0].array == "R"
    # *reading* a replicated array is the cheap direction: clean
    g_ok = ProgramGraph()
    g_ok.assign(_assign("B", "R"))
    assert analyze(ds, g_ok) == []


def test_rpr020_alltoall_statement():
    ds = _scope()
    _block(ds, "A", 64)
    ds.declare("B", 64)
    ds.distribute("B", [Cyclic()], to="PR")
    g = ProgramGraph()
    g.assign(_assign("A", "B"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR020"]
    assert diags[0].severity is Severity.PERF
    assert diags[0].words == 48         # modeled volume, locked
    # aligned mappings shift locally: clean
    ds2 = _scope()
    _block(ds2, "A", 64)
    _block(ds2, "B", 64)
    g2 = ProgramGraph()
    g2.assign(_assign("A", "B"))
    assert analyze(ds2, g2) == []
    # perf=False (the serving gate) skips the schedule-compiling lint
    assert analyze(ds, g, perf=False) == []


def test_rpr021_dense_remap():
    ds = _scope()
    _block(ds, "A", 64, dynamic=True)
    _block(ds, "B", 64)
    g = ProgramGraph()
    g.redistribute("A", (Cyclic(),), to="PR")
    g.assign(_assign("B", "A"))
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR021"]
    assert diags[0].words == 48         # 48 of 64 elements change owners
    # an identity remap moves nothing: no density lint
    g_ok = ProgramGraph()
    g_ok.redistribute("A", (Block(),), to="PR")
    g_ok.assign(_assign("B", "A"))
    assert analyze(ds, g_ok) == []


def test_rpr022_unhoisted_loop_invariant_remap():
    def program():
        ds = _scope()
        _block(ds, "A", 64, dynamic=True)
        _block(ds, "B", 64)
        g = ProgramGraph()
        g.loop(3, [RedistributeNode("A", (Cyclic(),), "PR"),
                   _assign("B", "A")])
        return ds, g

    ds, g = program()
    at_o0 = analyze(ds, g, opt_level=0)
    assert "RPR022" in codes(at_o0)
    d = next(d for d in at_o0 if d.code == "RPR022")
    assert "all 3 trips" in d.message
    # -O2 hoists it: the lint is suppressed (the dense-remap note stays)
    ds2, g2 = program()
    assert "RPR022" not in codes(analyze(ds2, g2, opt_level=2))


def test_loop_hazards_reported_once_with_the_loop_span():
    ds = _scope()
    _block(ds, "A", 8)
    _block(ds, "B", 8)
    g = ProgramGraph()
    g.loop(5, [_assign(ArrayRef("A", (99,)), ArrayRef("B", (1,)))])
    diags = analyze(ds, g)
    assert codes(diags) == ["RPR002"]   # once, not once per trip
    # Session spans are static pre-order indices: loop=0, body stmt=1
    assert diags[0].span.statement == 1


# ----------------------------------------------------------------------
# The front-end codes (raised as exceptions, folded by lint_program)
# ----------------------------------------------------------------------
def test_rpr100_parse_error():
    from repro.directives.analyzer import lint_program
    diags, result = lint_program("      REAL A(8\n")
    assert result is None
    assert codes(diags) == ["RPR100"]
    assert diags[0].span.line == 1


def test_rpr101_loop_structure():
    g = ProgramGraph()
    with pytest.raises(DirectiveError) as exc:
        g.loop(-1, [])
    assert exc.value.code == "RPR101"
    assert Diagnostic.from_exception(exc.value).code == "RPR101"


def test_lint_program_carries_source_lines():
    from repro.directives.analyzer import lint_program
    diags, result = lint_program(
        "      REAL A(8), B(8)\n"
        "!HPF$ PROCESSORS PR(4)\n"
        "!HPF$ DISTRIBUTE (BLOCK) TO PR :: A, B\n"
        "      A(1:9) = B(1:9)\n")
    assert result is not None
    assert codes(diags) == ["RPR002", "RPR002"]
    assert [d.span.line for d in diags] == [4, 4]


def test_lint_program_clean_and_collect_only():
    from repro.directives.analyzer import lint_program
    source = ("      REAL A(8), B(8)\n"
              "!HPF$ PROCESSORS PR(4)\n"
              "!HPF$ DISTRIBUTE (BLOCK) TO PR :: A, B\n"
              "      A(1:8) = B(1:8)\n")
    diags, result = lint_program(source)
    assert diags == []
    # collect-only: the program was lowered but never executed
    assert result.reports == []


def test_lint_program_remap_of_static_array():
    from repro.directives.analyzer import lint_program
    diags, _ = lint_program(
        "      REAL A(8)\n"
        "!HPF$ PROCESSORS PR(4)\n"
        "!HPF$ DISTRIBUTE A(BLOCK) TO PR\n"
        "!HPF$ REDISTRIBUTE A(CYCLIC) TO PR\n", perf=False)
    assert codes(diags) == ["RPR006"]
    assert diags[0].span.line == 4


# ----------------------------------------------------------------------
# The Session and service surfaces
# ----------------------------------------------------------------------
def test_session_check_is_non_destructive():
    from repro import Session
    from repro.distributions import Block as ApiBlock

    s = Session(4, machine=False)
    pr = s.processors("PR", 4)
    a = s.array("A", 8).distribute(ApiBlock(), to=pr)
    b = s.array("B", 8).distribute(ApiBlock(), to=pr)
    # slicing clamps to the domain, so record the Fortran-style section
    # 1:9 explicitly — out of the declared 1:8 domain on both sides
    s.record(Assignment(a.ref(Triplet(1, 9)), b.ref(Triplet(1, 9))))
    first = s.check()
    assert codes(first) == ["RPR002", "RPR002"]
    assert first[0].span.statement == 0
    # check() consumed nothing: it sees the same program again
    assert codes(s.check()) == ["RPR002", "RPR002"]
    assert len(s.builder) == 1


def test_service_rejects_error_programs():
    from repro import Session
    from repro.distributions import Block as ApiBlock
    from repro.engine.planstore import PlanStore
    from repro.serve import SessionService

    with SessionService(plan_store=PlanStore()) as svc:
        s = Session(4, service=svc)
        pr = s.processors("PR", 4)
        a = s.array("A", 8).distribute(ApiBlock(), to=pr)
        b = s.array("B", 8).distribute(ApiBlock(), to=pr)
        s.record(Assignment(a.ref(Triplet(1, 9)), b.ref(Triplet(1, 9))))
        with pytest.raises(DiagnosticError) as exc:
            s.run()
        assert "RPR002" in codes(exc.value.diagnostics)
        assert svc.stats()["rejected"] == 1
        # plan store untouched: the gate compiles nothing
        assert svc.stats()["plan_store"]["misses"] == 0
        # warnings alone do not reject
        a[1:8] = b[1:8]
        result = s.run()
        assert result is not None
        assert svc.stats()["rejected"] == 1


def test_session_run_lint_gate(monkeypatch):
    from repro import Session
    from repro.distributions import Block as ApiBlock
    from repro.engine.diagnostics import LINT_LOG

    monkeypatch.setenv("REPRO_LINT", "1")
    del LINT_LOG[:]
    s = Session(4, machine=False)
    pr = s.processors("PR", 4)
    a = s.array("A", 8).distribute(ApiBlock(), to=pr)
    b = s.array("B", 8).distribute(ApiBlock(), to=pr)
    s.record(Assignment(a.ref(Triplet(1, 9)), b.ref(Triplet(1, 9))))
    with pytest.raises(DiagnosticError):
        s.run()
    assert "RPR002" in codes(LINT_LOG)
    del LINT_LOG[:]


# ----------------------------------------------------------------------
# The CLI surface
# ----------------------------------------------------------------------
_CLEAN_HPF = ("      REAL A(8), B(8)\n"
              "!HPF$ PROCESSORS PR(4)\n"
              "!HPF$ DISTRIBUTE (BLOCK) TO PR :: A, B\n"
              "      A(1:8) = B(1:8)\n")
_BROKEN_HPF = ("      REAL A(8), B(8)\n"
               "!HPF$ PROCESSORS PR(4)\n"
               "!HPF$ DISTRIBUTE (BLOCK) TO PR :: A, B\n"
               "      A(1:9) = B(1:9)\n")


def test_cli_lint_exit_codes(tmp_path, capsys):
    from repro.cli import main

    clean = tmp_path / "clean.hpf"
    clean.write_text(_CLEAN_HPF)
    broken = tmp_path / "broken.hpf"
    broken.write_text(_BROKEN_HPF)
    assert main(["lint", str(clean)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert main(["lint", str(broken)]) == 1
    out = capsys.readouterr().out
    assert "RPR002" in out and "line 4" in out
    # several files: any error-severity finding fails the run
    assert main(["lint", str(clean), str(broken)]) == 1
    capsys.readouterr()


def test_cli_lint_json(tmp_path, capsys):
    from repro.cli import main

    broken = tmp_path / "broken.hpf"
    broken.write_text(_BROKEN_HPF)
    assert main(["lint", "--format", "json", str(broken)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 2
    assert payload["file"] == str(broken)
    assert {d["code"] for d in payload["diagnostics"]} == {"RPR002"}


def test_cli_lint_python_file(tmp_path, capsys):
    from repro.cli import main

    prog = tmp_path / "prog.py"
    prog.write_text(
        "from repro import Session\n"
        "from repro.distributions import Block\n"
        "s = Session(4)\n"
        "pr = s.processors('PR', 4)\n"
        "a = s.array('A', 8).distribute(Block(), to=pr)\n"
        "b = s.array('B', 8).distribute(Block(), to=pr)\n"
        "a[1:8] = b[1:8]\n"
        "s.run()\n")
    assert main(["lint", str(prog)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_cli_lint_python_file_with_errors(tmp_path, capsys):
    from repro.cli import main

    prog = tmp_path / "bad.py"
    prog.write_text(
        "from repro import Session\n"
        "from repro.distributions import Block\n"
        "from repro.engine.assignment import Assignment\n"
        "from repro.fortran.triplet import Triplet\n"
        "s = Session(4)\n"
        "pr = s.processors('PR', 4)\n"
        "a = s.array('A', 8).distribute(Block(), to=pr)\n"
        "b = s.array('B', 8).distribute(Block(), to=pr)\n"
        "s.record(Assignment(a.ref(Triplet(1, 9)), b.ref(Triplet(1, 9))))\n"
        "s.run()\n")
    assert main(["lint", str(prog)]) == 1
    assert "RPR002" in capsys.readouterr().out
