"""The DO/END DO front end: lexing/parsing, lowering into LoopNodes,
optimizer reach (halo validity and remap hoisting on text programs),
equivalence with the Session-recorded loop, and the CLI path over the
shipped ``examples/jacobi_do.hpf``."""

import pathlib

import numpy as np
import pytest

from repro.directives import nodes as N
from repro.directives.analyzer import run_program
from repro.directives.parser import parse_program
from repro.engine.ir import LoopNode, StatementNode
from repro.errors import DirectiveError
from repro.machine.config import MachineConfig

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

JACOBI_SRC = """
      PARAMETER (N = 32)
      REAL X(N,N), XNEW(N,N), R(N,N)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: X, XNEW, R
      DO K = 1, 10
      XNEW(2:N-1,2:N-1) = 0.25 * (X(1:N-2,2:N-1) + X(3:N,2:N-1) + X(2:N-1,1:N-2) + X(2:N-1,3:N))
      R(2:N-1,2:N-1) = X(1:N-2,2:N-1) + X(3:N,2:N-1) + X(2:N-1,1:N-2) + X(2:N-1,3:N) - 4.0 * X(2:N-1,2:N-1)
      X(2:N-1,2:N-1) = XNEW(2:N-1,2:N-1)
      END DO
"""


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class TestParsing:
    def test_do_node(self):
        nodes = parse_program("      DO K = 1, 10")
        (node,) = nodes
        assert isinstance(node, N.DoNode)
        assert node.var == "K" and node.step is None

    def test_do_with_step(self):
        (node,) = parse_program("      DO I = 2, 20, 3")
        assert isinstance(node, N.DoNode) and node.step is not None

    def test_end_do_both_spellings(self):
        assert isinstance(parse_program("      END DO")[0], N.EndDoNode)
        assert isinstance(parse_program("      ENDDO")[0], N.EndDoNode)

    def test_float_literals_in_statements(self):
        (node,) = parse_program("      A(1:4) = B(1:4) * 0.25")
        assert isinstance(node, N.AssignNode)
        assert isinstance(node.rhs, N.BinNode)
        assert node.rhs.right.value == 0.25

    def test_do_named_array_still_parses(self):
        # an array named DO is pathological but legal: DO(1:2) = ...
        (node,) = parse_program("      DO(1:2) = DO(3:4)")
        assert isinstance(node, N.AssignNode)


# ----------------------------------------------------------------------
# Lowering and semantics
# ----------------------------------------------------------------------
class TestLowering:
    def test_loop_becomes_loopnode(self):
        res = run_program(JACOBI_SRC, n_processors=4)
        (loop,) = res.graph.nodes
        assert isinstance(loop, LoopNode)
        assert loop.count == 10
        assert all(isinstance(b, StatementNode) for b in loop.body)
        assert len(loop.body) == 3

    def test_trip_count_formula(self):
        src = "      REAL A(4), B(4)\n      DO K = 2, 20, 3\n" \
              "      A(1:4) = B(1:4)\n      END DO\n"
        res = run_program(src)
        assert res.graph.nodes[0].count == 7    # 2,5,8,11,14,17,20

    def test_zero_trip_loop(self):
        src = "      REAL A(4)\n      DO K = 5, 4\n" \
              "      A(1:4) = A(1:4)\n      END DO\n"
        res = run_program(src)
        assert res.graph.nodes[0].count == 0
        assert len(res.reports) == 0

    def test_nested_loops(self):
        src = """
      REAL A(8), B(8)
      DO I = 1, 2
      DO J = 1, 3
      A(1:8) = B(1:8)
      END DO
      END DO
"""
        res = run_program(src, machine=True)
        (outer,) = res.graph.nodes
        assert outer.count == 2
        assert isinstance(outer.body[0], LoopNode)
        assert outer.body[0].count == 3
        assert len(res.reports) == 6

    def test_numerics_match_unrolled(self):
        rolled = run_program("""
      REAL A(6), B(6)
      DO K = 1, 3
      A(2:6) = A(1:5) + B(2:6)
      END DO
""", inputs={"A": None})
        unrolled = run_program("""
      REAL A(6), B(6)
      A(2:6) = A(1:5) + B(2:6)
      A(2:6) = A(1:5) + B(2:6)
      A(2:6) = A(1:5) + B(2:6)
""")
        np.testing.assert_array_equal(rolled.ds.arrays["A"].data,
                                      unrolled.ds.arrays["A"].data)

    def test_missing_end_do(self):
        with pytest.raises(DirectiveError, match="not closed"):
            run_program("      REAL A(4)\n      DO K = 1, 2\n"
                        "      A(1:4) = A(1:4)\n")

    def test_end_do_without_do(self):
        with pytest.raises(DirectiveError, match="matching DO"):
            run_program("      END DO")

    def test_loop_variable_in_subscripts_rejected(self):
        with pytest.raises(DirectiveError, match="loop variable"):
            run_program("""
      REAL A(10)
      DO K = 1, 3
      A(K:K) = A(1:1)
      END DO
""")

    def test_directive_inside_loop_rejected(self):
        with pytest.raises(DirectiveError, match="inside a DO loop"):
            run_program("""
      REAL A(10), B(10)
!HPF$ PROCESSORS PR(2)
      DO K = 1, 2
!HPF$ DISTRIBUTE A(BLOCK) TO PR
      A(1:10) = B(1:10)
      END DO
""")


# ----------------------------------------------------------------------
# Optimizer reach: the ROADMAP "IR front end for DO loops" item
# ----------------------------------------------------------------------
class TestOptimizerReach:
    def test_halo_validity_fires_on_text_programs(self):
        """The acceptance check: a DO-loop program at -O2 reports
        nonzero opt_words_saved (the residual's re-fetch is proven
        resident on every trip)."""
        r0 = run_program(JACOBI_SRC, n_processors=4, machine=True,
                         opt_level=0)
        r2 = run_program(JACOBI_SRC, n_processors=4, machine=True,
                         opt_level=2)
        assert r2.machine.stats.total_words_saved > 0
        assert r2.machine.stats.opt_words_saved.get("halo", 0) > 0
        # words halve: each sweep's residual re-reads the update's halos
        assert r2.machine.stats.total_words == \
            r0.machine.stats.total_words // 2
        # numerics are opt-level invariant
        np.testing.assert_array_equal(r2.ds.arrays["X"].data,
                                      r0.ds.arrays["X"].data)

    def test_remap_hoisting_fires_on_text_programs(self):
        src = """
      PARAMETER (N = 16)
      REAL A(N,N), B(N,N)
!HPF$ PROCESSORS PR(4)
!HPF$ DYNAMIC A
!HPF$ DISTRIBUTE A(BLOCK,:) TO PR
!HPF$ DISTRIBUTE B(BLOCK,:) TO PR
      DO K = 1, 5
!HPF$ REDISTRIBUTE A(CYCLIC,:) TO PR
      B(1:N,1:N) = A(1:N,1:N)
      END DO
"""
        res = run_program(src, n_processors=4, machine=True, opt_level=2)
        assert res.savings["hoisted_remaps"] == 4   # trips 2..5
        # with the layout epoch stable, trips 2..5 CSE their exchange
        assert res.savings["cse_hits"] == 4

    def test_matches_session_recorded_loop(self):
        """The same Jacobi program recorded via the Session API and via
        directive text charges the machine bit-identically."""
        from repro.workloads.stencil import jacobi_session
        for opt in (0, 2):
            text = run_program(JACOBI_SRC, n_processors=4, machine=True,
                               opt_level=opt)
            s = jacobi_session(32, 2, 2, iters=10,
                               machine=MachineConfig(4), opt=opt)
            s.run()
            assert s.machine.stats.total_words == \
                text.machine.stats.total_words
            assert s.machine.stats.total_messages == \
                text.machine.stats.total_messages
            np.testing.assert_array_equal(
                s.machine.stats.words_sent,
                text.machine.stats.words_sent)
            assert s.machine.elapsed == text.machine.elapsed


# ----------------------------------------------------------------------
# The shipped DO-loop program + CLI
# ----------------------------------------------------------------------
class TestShippedProgram:
    def test_example_program_reports_savings_at_o2(self):
        source = (EXAMPLES / "jacobi_do.hpf").read_text()
        res = run_program(source, n_processors=4, inputs={"N": 24},
                          machine=True, opt_level=2)
        assert res.machine.stats.total_words_saved > 0

    @pytest.mark.parametrize("backend", ["simulate", "spmd"])
    def test_cli_run_opt2_both_backends(self, backend, capsys):
        from repro.cli import main
        rc = main(["run", str(EXAMPLES / "jacobi_do.hpf"),
                   "--opt", "2", "--backend", backend,
                   "-p", "4", "-D", "N=16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimizer savings" in out
        assert "halo" in out
