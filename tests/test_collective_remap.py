"""Tests for collective-tree remap pricing (replication as broadcast)."""

import numpy as np

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr, BaseStar
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.redistribute import (
    price_remap,
    price_remap_collective,
)
from repro.machine.config import MachineConfig


def replicating_event(np_=8, n=32):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("D", n, np_)
    ds.declare("A", n, dynamic=True)
    ds.distribute("D", [Block(), Block()], to=None)
    ds.distribute("A", [Block()], to="PR")
    event = ds.realign(AlignSpec(
        "A", [AxisDummy("I")], "D",
        [BaseExpr(Dummy("I")), BaseStar()]))
    return ds, event


class TestCollectivePricing:
    def test_nonreplicating_matches_p2p_volume(self):
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.declare("A", 64, dynamic=True)
        ds.distribute("A", [Block()], to="PR")
        event = ds.redistribute("A", [Cyclic()], to="PR")
        config = MachineConfig(8)
        time, words = price_remap_collective(event, config)
        _, moved = price_remap(event, 8)
        assert words == moved
        assert time > 0

    def test_replication_volume_matches_p2p(self):
        _, event = replicating_event()
        config = MachineConfig(8)
        _, words_c = price_remap_collective(event, config)
        _, moved = price_remap(event, 8)
        assert words_c == moved    # same copies, different schedule

    def test_broadcast_tree_beats_fanout_on_alpha(self):
        """With expensive message startup, tree broadcast wins over
        point-to-point fan-out (the reason collectives exist)."""
        _, event = replicating_event()
        config = MachineConfig(8, alpha=10_000.0, beta=0.01)
        time_collective, _ = price_remap_collective(event, config)
        matrix, _ = price_remap(event, 8)
        time_p2p = sum(config.message_cost(int(s), int(d),
                                           int(matrix[s, d]))
                       for s, d in zip(*np.nonzero(matrix)))
        assert time_collective < time_p2p

    def test_fresh_event_free(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 8)
        ds.distribute("A", [Block()], to="PR")
        event = ds.remap_events[-1]
        assert price_remap_collective(event, MachineConfig(4)) == (0.0, 0)
