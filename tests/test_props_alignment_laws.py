"""Property-based algebraic laws of alignment composition.

* identity is a left and right unit of chain composition;
* composition is associative on images;
* representative/map_indices commute with composition;
* clamp-mode ordering: EXACT image == PAPER image == CLAMP image for
  in-range alignments; CLAMP is total even when EXACT raises.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.ast import Dummy
from repro.align.function import AlignmentFunction, ClampMode, \
    identity_alignment
from repro.align.reduce import reduce_alignment
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.errors import AlignmentError
from repro.fortran.domain import IndexDomain
from repro.templates.model import ChainedAlignment


@st.composite
def shift_fns(draw, n_min=4, n_max=30):
    """An in-range shift alignment X(I) -> B(I + s)."""
    n = draw(st.integers(n_min, n_max))
    s = draw(st.integers(0, 6))
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(Dummy("I") + s)])
    fn = AlignmentFunction(reduce_alignment(
        spec, IndexDomain.standard(n), IndexDomain.standard(n + s)),
        clamp=ClampMode.EXACT)
    return fn


@given(shift_fns())
@settings(max_examples=60)
def test_identity_is_unit(fn):
    left = ChainedAlignment([identity_alignment(fn.alignee_domain), fn])
    right = ChainedAlignment(
        [fn, identity_alignment(fn.base_domain)])
    for i in range(1, fn.alignee_domain.size + 1, 3):
        assert left.image((i,)) == fn.image((i,))
        assert right.image((i,)) == fn.image((i,))


@given(st.data())
@settings(max_examples=50)
def test_composition_associative(data):
    f = data.draw(shift_fns(8, 16))
    # build g, h chained onto f's base
    def extend(dom, s):
        spec = AlignSpec("X", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I") + s)])
        return AlignmentFunction(reduce_alignment(
            spec, dom, IndexDomain.standard(dom.size + s)),
            clamp=ClampMode.EXACT)

    g = extend(f.base_domain, data.draw(st.integers(0, 4)))
    h = extend(g.base_domain, data.draw(st.integers(0, 4)))
    fg_h = ChainedAlignment([ChainedAlignment([f, g]).links[0], g, h])
    f_gh = ChainedAlignment([f, g, h])
    for i in range(1, f.alignee_domain.size + 1, 5):
        assert fg_h.image((i,)) == f_gh.image((i,))


@given(shift_fns())
@settings(max_examples=60)
def test_map_indices_matches_images(fn):
    n = fn.alignee_domain.size
    idx = np.arange(1, n + 1).reshape(-1, 1)
    mapped = fn.map_indices(idx)
    for i in range(n):
        assert frozenset({tuple(mapped[i])}) == fn.image((i + 1,))


@given(st.integers(4, 30), st.integers(1, 8))
@settings(max_examples=60)
def test_clamp_mode_agreement_in_range(n, s):
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(Dummy("I") + s)])
    adom = IndexDomain.standard(n)
    bdom = IndexDomain.standard(n + s)
    images = {}
    for mode in ClampMode:
        fn = AlignmentFunction(
            reduce_alignment(spec, adom, bdom), clamp=mode)
        images[mode] = [fn.image((i,)) for i in range(1, n + 1)]
    assert images[ClampMode.EXACT] == images[ClampMode.PAPER]
    assert images[ClampMode.EXACT] == images[ClampMode.CLAMP]


@given(st.integers(4, 30), st.integers(1, 8))
@settings(max_examples=60)
def test_clamp_total_where_exact_raises(n, s):
    # base too small: I + s overflows for large I
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(Dummy("I") + s)])
    adom = IndexDomain.standard(n)
    bdom = IndexDomain.standard(n)      # deliberately tight
    exact = AlignmentFunction(reduce_alignment(spec, adom, bdom),
                              clamp=ClampMode.EXACT)
    clamp = AlignmentFunction(reduce_alignment(spec, adom, bdom),
                              clamp=ClampMode.CLAMP)
    overflow = (n,)
    try:
        exact.image(overflow)
        raised = False
    except AlignmentError:
        raised = True
    assert raised
    # CLAMP pins to the upper bound (the paper's MIN rule, two-sided)
    assert clamp.image(overflow) == frozenset({(n,)})