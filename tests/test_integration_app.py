"""Whole-application integration test.

One program exercising the full pipeline: declarations, PROCESSORS,
GENERAL_BLOCK from an integer array, alignments (affine + collapse),
DYNAMIC phases with REDISTRIBUTE/REALIGN, allocatables, executable
statements on the simulated machine — then end-to-end verification of
numerics (against NumPy), mapping invariants, traffic attribution, and a
procedure call over the resulting state.
"""

import numpy as np
import pytest

from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.directives.analyzer import run_program
from repro.distributions.cyclic import Cyclic
from repro.engine.redistribute import price_remap
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig

N = 48
NP = 8

SRC = f"""
! mini application: weighted relaxation with a phase change
      PARAMETER (N = {N})
      REAL GRID(N,N), NEXT(N,N), WEIGHT(N)
      REAL,ALLOCATABLE(:) :: SCRATCH
      INTEGER CUTS(1:{NP - 1})
!HPF$ PROCESSORS PR({NP})
!HPF$ DYNAMIC GRID, SCRATCH

! phase 1 mapping: rows in irregular blocks chosen by the host
!HPF$ DISTRIBUTE GRID(GENERAL_BLOCK(CUTS), :) TO PR
!HPF$ ALIGN NEXT(I,J) WITH GRID(I,J)
!HPF$ ALIGN WEIGHT(I) WITH GRID(I,*)

      GRID = 2
      NEXT(1:N-1,1:N) = GRID(1:N-1,1:N) + GRID(2:N,1:N)
      GRID(1:N,1:N) = NEXT(1:N,1:N) * 1

! allocatable scratch aligned to a GRID row slice
      ALLOCATE(SCRATCH(N))
!HPF$ REALIGN SCRATCH(I) WITH GRID(I,1)

! phase 2: switch GRID to CYCLIC rows; everything aligned follows
!HPF$ REDISTRIBUTE GRID(CYCLIC,:) TO PR
      NEXT(1:N-1,1:N) = GRID(1:N-1,1:N) + GRID(2:N,1:N)
"""


@pytest.fixture(scope="module")
def app():
    cuts = np.linspace(N / NP, N - N / NP, NP - 1).astype(int).tolist()
    return run_program(SRC, n_processors=NP,
                       inputs={"CUTS": cuts},
                       machine=MachineConfig(NP)), cuts


class TestNumerics:
    def test_phase1_values(self, app):
        res, _ = app
        # after phase 1: GRID rows 1..N-1 hold 4, row N holds 0 copied
        # from NEXT's untouched last row
        grid = res.ds.arrays["GRID"].data
        np.testing.assert_array_equal(grid[:-1, :], 4.0)
        np.testing.assert_array_equal(grid[-1, :], 0.0)

    def test_phase2_values(self, app):
        res, _ = app
        nxt = res.ds.arrays["NEXT"].data
        # rows 1..N-2: 4+4=8; row N-1: 4+0=4
        np.testing.assert_array_equal(nxt[:-2, :], 8.0)
        np.testing.assert_array_equal(nxt[-2, :], 4.0)


class TestMappings:
    def test_forest_shape(self, app):
        res, _ = app
        trees = res.ds.forest_snapshot()
        assert trees["GRID"] == frozenset({"NEXT", "WEIGHT", "SCRATCH"})

    def test_phase1_general_block_respected(self, app):
        res, cuts = app
        # the REDISTRIBUTE replaced it; check via the recorded event
        first = [e for e in res.ds.remap_events
                 if e.array == "GRID"][0]
        pmap = first.new.primary_owner_map()
        assert pmap[cuts[0] - 1, 0] == 0 and pmap[cuts[0], 0] == 1

    def test_phase2_alignment_invariants(self, app):
        res, _ = app
        ds = res.ds
        for i in (1, 17, N):
            assert ds.owners("WEIGHT", (i,)) == ds.owners("GRID", (i, 1))
            assert ds.owners("SCRATCH", (i,)) == ds.owners("GRID", (i, 1))
            for j in (1, N):
                assert ds.owners("NEXT", (i, j)) == \
                    ds.owners("GRID", (i, j))

    def test_grid_now_cyclic(self, app):
        res, _ = app
        pmap = res.ds.owner_map("GRID")
        np.testing.assert_array_equal(pmap[:NP, 0], np.arange(NP))


class TestTrafficAttribution:
    def test_statements_tagged(self, app):
        res, _ = app
        tags = res.machine.words_by_tag()
        assert tags, "executable statements must have charged traffic"
        assert sum(tags.values()) == res.machine.stats.total_words

    def test_phase2_stencil_traffic_exceeds_phase1(self, app):
        res, _ = app
        # same statement text, so tags collide per reference; compare
        # the two reports instead: CYCLIC rows make every row-shift
        # off-processor, GENERAL_BLOCK only block boundaries
        _init, phase1, _copyback, phase2 = res.reports
        assert phase2.total_words > phase1.total_words
        assert phase2.locality < phase1.locality

    def test_remap_pricing_consistency(self, app):
        res, _ = app
        redistribute = [e for e in res.ds.remap_events
                        if e.reason == "REDISTRIBUTE"][0]
        matrix, moved = price_remap(redistribute, NP)
        assert moved > 0
        assert matrix.sum() == moved


class TestProcedureOnAppState:
    def test_call_with_section_of_grid(self, app):
        res, _ = app
        ds = res.ds
        captured = {}

        def body(frame, x):
            captured["dist"] = frame.distribution_of("X")
            return float(np.sum(x.data))

        proc = Procedure("NORM", [DummySpec("X", DummyMode.INHERIT)],
                         body)
        rec = proc.call(ds, ("GRID", (Triplet(1, N, 2), Triplet(1, N))))
        # inherited: every second CYCLIC row -> even units only
        dist = captured["dist"]
        owners = {dist.primary_owner((k, 1))
                  for k in range(1, N // 2 + 1)}
        assert owners == {u for u in range(NP) if u % 2 == 0}
        assert rec.result == pytest.approx(
            float(ds.arrays["GRID"].data[::2, :].sum()))

    def test_explicit_respec_restores_app_state(self, app):
        res, _ = app
        ds = res.ds
        before = ds.owner_map("GRID").copy()
        proc = Procedure("TOUCH", [DummySpec(
            "X", DummyMode.EXPLICIT,
            formats=(Cyclic(2), Cyclic(2)), to="PR")],
            lambda frame, x: None)
        with pytest.raises(Exception):
            # rank mismatch: 2 consuming formats over a 1-D PR target
            proc.call(ds, "GRID")
        np.testing.assert_array_equal(ds.owner_map("GRID"), before)
