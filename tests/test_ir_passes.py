"""Golden and property tests for the program-level IR + pass pipeline.

One golden test per pass — halo-validity skip, communication CSE,
message coalescing, remap hoisting — plus the pipeline-level properties:
``-O2`` never moves more words than ``-O0``, messages strictly drop on
the Jacobi loop, numerics are bit-identical at every opt level and on
every backend, and per-statement report attribution
(``words_by_pattern``) is opt-level invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.engine.analysis import replay_blockers
from repro.engine.ir import (
    AllocateNode,
    DeallocateNode,
    LoopNode,
    ProgramGraph,
    RedistributeNode,
    StatementNode,
)
from repro.engine.passes import (
    ProgramRunner,
    StatementPlan,
    passes_for,
    plan_hoists,
)
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.multigrid import multigrid_program
from repro.workloads.stencil import jacobi_program

P = 8
N = 32


def _seed_arrays(ds: DataSpace, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    for name in ds.created_arrays():
        data = ds.arrays[name].data
        data[...] = rng.uniform(-4.0, 4.0, size=data.shape)


def _run(builder, opt_level: int, backend: str = "simulate"):
    ds, graph = builder()
    _seed_arrays(ds)
    machine = DistributedMachine(MachineConfig(P))
    with ProgramRunner(ds, machine, backend=backend,
                       opt_level=opt_level) as runner:
        result = runner.run(graph)
    return ds, machine, result


def _jacobi():
    return jacobi_program(N, 4, 2, iters=10)


def _multigrid():
    return multigrid_program(N, 4, 2, cycles=2)


# ----------------------------------------------------------------------
# The IR itself
# ----------------------------------------------------------------------
class TestProgramGraph:
    def test_def_use_chains(self):
        _, graph = _jacobi()
        chains = graph.def_use()
        # 10 trips x 3 statements
        assert len(chains) == 30
        _, reads, writes = chains[0]        # the stencil
        assert reads == {"X"} and writes == {"XNEW"}
        _, reads, writes = chains[2]        # the copy-back
        assert reads == {"XNEW"} and writes == {"X"}

    def test_layout_epochs_split_at_remaps(self):
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N, dynamic=True)
        ds.declare("B", N)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(ArrayRef("A", (Triplet(2, N),)),
                          ArrayRef("B", (Triplet(1, N - 1),)))
        g = ProgramGraph()
        g.assign(stmt)
        g.redistribute("A", (Cyclic(),), to="PR")
        g.assign(stmt)
        g.assign(stmt)
        assert g.layout_epochs() == [0, 0, 1, 1]
        assert g.arrays() == {"A", "B"}

    def test_walk_unrolls_loops_with_trip_indices(self):
        _, graph = _jacobi()
        trips = [trip for _, trip, _ in graph.walk()]
        assert trips[:6] == [0, 0, 0, 1, 1, 1]
        assert len(trips) == 30

    def test_statements_flattened_in_order(self):
        _, graph = _jacobi()
        stmts = graph.statements()
        assert len(stmts) == 30
        assert str(stmts[0]).startswith("XNEW")

    def test_opt_levels(self):
        assert passes_for(0) == ()
        assert set(passes_for(1)) == {"halo", "cse"}
        assert set(passes_for(2)) == {"halo", "cse", "subsume",
                                      "coalesce", "hoist"}
        with pytest.raises(Exception):
            passes_for(7)


# ----------------------------------------------------------------------
# Golden test: halo-validity skip
# ----------------------------------------------------------------------
class TestHaloValidity:
    def test_residual_reuses_update_halos(self):
        """The residual statement re-reads exactly the halo faces the
        update fetched; at -O1+ the second fetch is skipped."""
        ds0, m0, r0 = _run(_jacobi, 0)
        ds1, m1, r1 = _run(_jacobi, 1)
        # exactly half the traffic is the redundant refetch
        assert m1.stats.total_words == m0.stats.total_words // 2
        assert r1.savings["halo_skips"] == 40     # 4 refs x 10 iterations
        assert m1.stats.opt_words_saved["halo"] == \
            m0.stats.total_words - m1.stats.total_words
        # the skipped deposits are attributed on the residual reports
        residual_report = r1.reports[1]
        assert set(residual_report.comm_actions.values()) == \
            {"halo-skip", "local"}
        assert residual_report.charged_words == 0
        assert residual_report.saved_words > 0

    def test_write_invalidates_resident_halos(self):
        """After the copy-back writes X, the next sweep's fetch must be
        charged again — the skip only covers genuinely unchanged data."""
        _, m1, r1 = _run(_jacobi, 1)
        plans = r1.schedule.statement_plans
        # every sweep's *update* statement is charged, every sweep's
        # residual is skipped: iteration 2's update must not ride
        # iteration 1's (stale) halos
        updates = [p for p in plans if p.statement.startswith("XNEW")]
        residuals = [p for p in plans if p.statement.startswith("R")]
        assert len(updates) == 10 and len(residuals) == 10
        assert all(p.charged_words > 0 for p in updates)
        assert all(p.charged_words == 0 for p in residuals)


# ----------------------------------------------------------------------
# Golden test: communication CSE
# ----------------------------------------------------------------------
class TestCommunicationCSE:
    def _cse_program(self):
        """Two statements with different LHS arrays (equal mappings)
        reading the same CYCLIC array: a dense, non-stencil pattern —
        the second read is a common subexpression, not a halo."""
        ds = DataSpace(P)
        ds.processors("PR", P)
        for name in ("A", "C"):
            ds.declare(name, N)
            ds.distribute(name, [Block()], to="PR")
        ds.declare("B", N)
        ds.distribute("B", [Cyclic()], to="PR")
        ref = ArrayRef("B", (Triplet(1, N - 1),))
        g = ProgramGraph()
        g.assign(Assignment(ArrayRef("A", (Triplet(2, N),)), ref))
        g.assign(Assignment(ArrayRef("C", (Triplet(2, N),)), ref))
        return ds, g

    def test_identical_refs_charged_once_per_epoch(self):
        ds0, m0, r0 = _run(self._cse_program, 0)
        ds1, m1, r1 = _run(self._cse_program, 1)
        assert m1.stats.total_words == m0.stats.total_words // 2
        assert r1.savings["cse_hits"] == 1
        assert r1.savings["halo_skips"] == 0
        assert "cse" in m1.stats.opt_words_saved
        # numerics unchanged
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds1.arrays[name].data,
                                          ds0.arrays[name].data)

    def test_cse_does_not_cross_layout_epochs(self):
        """A remap between the two reads changes the destination/source
        maps: the second read must be recharged."""
        def build():
            ds, g = self._cse_program()
            stmts = g.statements()
            ds.set_dynamic("B")
            g2 = ProgramGraph()
            g2.assign(stmts[0])
            g2.redistribute("B", (Cyclic(2),), to="PR")
            g2.assign(stmts[1])
            return ds, g2
        _, m1, r1 = _run(build, 1)
        assert r1.savings["cse_hits"] == 0


# ----------------------------------------------------------------------
# Golden test: message coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def _shift_pair_program(self):
        """One statement whose two shift refs ship between the *same*
        processor pairs: coalescing merges the pair's two messages into
        one with summed words.  The refs read *different* arrays so the
        subsumption pass (whose residency is per source array) cannot
        elide either — this fixture isolates coalescing."""
        ds = DataSpace(P)
        ds.processors("PR", P)
        for name in ("A", "B", "C"):
            ds.declare(name, N * P)
            ds.distribute(name, [Block()], to="PR")
        n = N * P
        stmt = Assignment(
            ArrayRef("A", (Triplet(3, n),)),
            ArrayRef("B", (Triplet(1, n - 2),))
            + ArrayRef("C", (Triplet(2, n - 1),)))
        g = ProgramGraph()
        g.assign(stmt)
        return ds, g

    def test_same_pair_messages_merge_words_exact(self):
        ds0, m0, r0 = _run(self._shift_pair_program, 0)
        ds2, m2, r2 = _run(self._shift_pair_program, 2)
        # words identical — coalescing only merges envelopes
        assert m2.stats.total_words == m0.stats.total_words
        # both refs ship q -> q+1: message count halves
        assert m0.stats.total_messages == 2 * (P - 1)
        assert m2.stats.total_messages == P - 1
        assert r2.savings["fused_windows"] == 1
        assert r2.savings["msgs_saved"] == P - 1
        assert m2.stats.opt_msgs_saved["coalesce"] == P - 1
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds2.arrays[name].data,
                                          ds0.arrays[name].data)

    def test_window_flushes_before_dependent_write(self):
        """A statement writing an array a buffered exchange read forces
        the flush first (Fortran read-before-write order): the fused
        deposit must appear in the ledger before the writing statement's
        own traffic."""
        ds, g = self._shift_pair_program()
        n = N * P
        # second statement overwrites B (read by the buffered exchange)
        g.assign(Assignment(ArrayRef("B", (Triplet(1, n),)),
                            ArrayRef("A", (Triplet(1, n),))))
        _seed_arrays(ds)
        machine = DistributedMachine(MachineConfig(P))
        result = ProgramRunner(ds, machine, opt_level=2).run(g)
        fused = [m for m in machine.ledger if m.tag.startswith("fused")]
        assert fused, "window never flushed"
        # the B = A statement is pointwise (same mapping): no traffic,
        # but the flush must have been triggered by its write
        assert result.reports[1].total_words == 0
        assert machine.stats.total_words == \
            result.reports[0].total_words


# ----------------------------------------------------------------------
# Golden test: remap hoisting
# ----------------------------------------------------------------------
class TestRemapHoisting:
    def _invariant_loop(self):
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N, dynamic=True)
        ds.declare("B", N)
        ds.distribute("A", [Cyclic()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(ArrayRef("A", (Triplet(2, N),)),
                          ArrayRef("B", (Triplet(1, N - 1),)))
        g = ProgramGraph()
        g.loop(6, [RedistributeNode("A", (Block(),), "PR"),
                   StatementNode(stmt)])
        return ds, g

    def test_invariant_remap_executes_once(self):
        ds0, m0, r0 = _run(self._invariant_loop, 0)
        ds2, m2, r2 = _run(self._invariant_loop, 2)
        # -O0 re-executes the directive every trip (epoch churn), -O2
        # proves it invariant and runs it on the first trip only
        assert len([e for e in ds0.remap_events
                    if e.reason == "REDISTRIBUTE"]) == 6
        assert len([e for e in ds2.remap_events
                    if e.reason == "REDISTRIBUTE"]) == 1
        assert r2.savings["hoisted_remaps"] == 5
        assert r2.schedule.hoisted_remaps == 5
        # the steady state stays hot: one compile, five cache hits
        assert ds2.schedule_cache.misses == 1
        assert ds2.schedule_cache.hits == 5
        assert ds0.schedule_cache.misses == 6
        np.testing.assert_array_equal(ds2.arrays["A"].data,
                                      ds0.arrays["A"].data)

    def test_ping_pong_remap_is_not_hoisted(self):
        """Two remaps of the same array in one body: neither is
        loop-invariant, both must execute every trip."""
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N, dynamic=True)
        ds.declare("B", N)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(ArrayRef("A", (Triplet(2, N),)),
                          ArrayRef("B", (Triplet(1, N - 1),)))
        g = ProgramGraph()
        g.loop(3, [RedistributeNode("A", (Cyclic(),), "PR"),
                   StatementNode(stmt),
                   RedistributeNode("A", (Block(),), "PR"),
                   StatementNode(stmt)])
        assert plan_hoists(g) == set()
        _seed_arrays(ds)
        machine = DistributedMachine(MachineConfig(P))
        result = ProgramRunner(ds, machine, opt_level=2).run(g)
        assert result.savings["hoisted_remaps"] == 0
        assert len([e for e in ds.remap_events
                    if e.reason == "REDISTRIBUTE"]) == 6

    def test_nested_loop_remap_does_not_hoist_past_its_loop(self):
        """A remap inside an inner loop only hoists relative to that
        loop; the plan never lifts it out of the outer repetition."""
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N, dynamic=True)
        ds.distribute("A", [Block()], to="PR")
        inner = LoopNode(3, (RedistributeNode("A", (Cyclic(),), "PR"),))
        g = ProgramGraph()
        g.loop(2, [inner])
        machine = DistributedMachine(MachineConfig(P))
        result = ProgramRunner(ds, machine, opt_level=2).run(g)
        # executed on trip 0 of the inner loop, once per outer trip
        assert len([e for e in ds.remap_events
                    if e.reason == "REDISTRIBUTE"]) == 2
        assert result.savings["hoisted_remaps"] == 4


# ----------------------------------------------------------------------
# Pipeline-level properties
# ----------------------------------------------------------------------
class TestPipelineProperties:
    @pytest.mark.parametrize("builder", [_jacobi, _multigrid],
                             ids=["jacobi", "multigrid"])
    def test_O2_words_le_O0_and_messages_strictly_drop(self, builder):
        _, m0, _ = _run(builder, 0)
        _, m2, _ = _run(builder, 2)
        assert m2.stats.total_words <= m0.stats.total_words
        assert m2.stats.total_messages < m0.stats.total_messages

    def test_jacobi_acceptance_reductions(self):
        """The headline numbers: >= 40% fewer words, >= 50% fewer
        messages on the 10-iteration Jacobi loop."""
        _, m0, _ = _run(_jacobi, 0)
        _, m2, _ = _run(_jacobi, 2)
        words_cut = 1.0 - m2.stats.total_words / m0.stats.total_words
        msgs_cut = 1.0 - m2.stats.total_messages / m0.stats.total_messages
        assert words_cut >= 0.40
        assert msgs_cut >= 0.50

    @pytest.mark.parametrize("builder", [_jacobi, _multigrid],
                             ids=["jacobi", "multigrid"])
    @pytest.mark.parametrize("opt_level", [1, 2])
    def test_numerics_bit_identical_across_levels(self, builder,
                                                  opt_level):
        ds0, _, _ = _run(builder, 0)
        dsk, _, _ = _run(builder, opt_level)
        for name in ds0.arrays:
            np.testing.assert_array_equal(dsk.arrays[name].data,
                                          ds0.arrays[name].data)

    @pytest.mark.parametrize("backend", ["simulate", "spmd", "message"])
    def test_numerics_bit_identical_across_backends_at_O2(self, backend):
        ds0, _, _ = _run(_jacobi, 0)
        dsb, _, _ = _run(_jacobi, 2, backend=backend)
        for name in ds0.arrays:
            np.testing.assert_array_equal(dsb.arrays[name].data,
                                          ds0.arrays[name].data)

    def test_spmd_machine_bit_identical_to_simulate_at_O2(self):
        _, m_sim, r_sim = _run(_jacobi, 2)
        _, m_spmd, r_spmd = _run(_jacobi, 2, backend="spmd")
        np.testing.assert_array_equal(m_spmd.stats.words_sent,
                                      m_sim.stats.words_sent)
        np.testing.assert_array_equal(m_spmd.stats.msgs_sent,
                                      m_sim.stats.msgs_sent)
        assert m_spmd.elapsed == m_sim.elapsed
        assert m_spmd.stats.pattern_words == m_sim.stats.pattern_words
        assert m_spmd.stats.opt_words_saved == m_sim.stats.opt_words_saved
        assert r_spmd.savings == r_sim.savings

    def test_report_attribution_is_opt_level_invariant(self):
        """Satellite: words_by_pattern() totals must be unchanged at
        every opt level — coalesced/skipped traffic is attributed back
        to its originating statement."""
        _, _, r0 = _run(_jacobi, 0)
        _, _, r2 = _run(_jacobi, 2)
        assert len(r0.reports) == len(r2.reports)
        for rep0, rep2 in zip(r0.reports, r2.reports):
            assert rep0.statement == rep2.statement
            assert rep0.words_by_pattern() == rep2.words_by_pattern()
            np.testing.assert_array_equal(rep2.words, rep0.words)
        assert r2.logical_words == r0.logical_words
        # while the physically charged traffic did drop
        assert r2.charged_words < r0.charged_words

    def test_program_schedule_records_the_rewrite(self):
        _, _, r2 = _run(_jacobi, 2)
        plans = r2.schedule.statement_plans
        assert len(plans) == 30
        assert all(isinstance(p, StatementPlan) for p in plans)
        actions = {a.action for p in plans for a in p.actions}
        assert actions == {"fused", "halo-skip", "local"}
        assert "-O2" in r2.schedule.summary()


# ----------------------------------------------------------------------
# The directive front end / CLI surface
# ----------------------------------------------------------------------
class TestFrontEndOpt:
    SRC = """
      PARAMETER (N = 48)
      REAL A(N,N), B(N,N), R(N,N)
!HPF$ PROCESSORS PR(4,2)
!HPF$ DISTRIBUTE A(BLOCK,BLOCK) TO PR
!HPF$ DISTRIBUTE B(BLOCK,BLOCK) TO PR
!HPF$ DISTRIBUTE R(BLOCK,BLOCK) TO PR
      B(2:N-1,2:N-1) = A(1:N-2,2:N-1) + A(3:N,2:N-1)
      R(2:N-1,2:N-1) = A(1:N-2,2:N-1) + A(3:N,2:N-1)
"""

    def test_run_program_opt_skips_redundant_fetch(self):
        from repro.directives.analyzer import run_program
        base = run_program(self.SRC, n_processors=8, machine=True)
        opt = run_program(self.SRC, n_processors=8, machine=True,
                          opt_level=2)
        assert opt.machine.stats.total_words == \
            base.machine.stats.total_words // 2
        assert opt.machine.stats.total_words_saved > 0
        for rep_b, rep_o in zip(base.reports, opt.reports):
            assert rep_b.words_by_pattern() == rep_o.words_by_pattern()

    def test_cli_run_opt_flag(self, tmp_path, capsys):
        from repro.cli import main
        src = tmp_path / "prog.f"
        src.write_text(self.SRC)
        assert main(["run", str(src), "-p", "8", "--opt", "2"]) == 0
        out = capsys.readouterr().out
        assert "opt=-O2" in out
        assert "optimizer savings" in out

    def test_cli_bench_diff_gates_opt_reduction(self, tmp_path, capsys):
        import json
        from repro.cli import main
        base = [{"name": "jacobi_opt_O2", "words_moved": 100,
                 "words_reduction_vs_O0": 0.5,
                 "msgs_reduction_vs_O0": 0.5}]
        cand = [{"name": "jacobi_opt_O2", "words_moved": 180,
                 "words_reduction_vs_O0": 0.1,
                 "msgs_reduction_vs_O0": 0.5}]
        b = tmp_path / "base.json"
        c = tmp_path / "cand.json"
        b.write_text(json.dumps(base))
        c.write_text(json.dumps(cand))
        assert main(["bench-diff", str(b), str(c)]) == 1
        assert "words_reduction_vs_O0 regressed" in capsys.readouterr().out
        # identical snapshots pass
        assert main(["bench-diff", str(b), str(b)]) == 0


# ----------------------------------------------------------------------
# Subset subsumption
# ----------------------------------------------------------------------
class TestSubsumption:
    """Golden tests for the subset-subsumption pass: an exchange whose
    per-(src, dst) element sets are contained in what earlier exchanges
    of the same source left resident is skipped (fully or cell-wise)."""

    @staticmethod
    def _shift_pair_1d():
        # B shift-by-2 deposits first; B shift-by-1 is element-contained
        # in it on every (src, dst) cell -> full subsume-skip
        ds = DataSpace(P)
        ds.processors("PR", P)
        n = 64
        ds.declare("A", n)
        ds.declare("B", n)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(ArrayRef("A", (Triplet(3, n),)),
                          ArrayRef("B", (Triplet(1, n - 2),))
                          + ArrayRef("B", (Triplet(2, n - 1),)))
        g = ProgramGraph()
        g.assign(stmt)
        return ds, g

    @staticmethod
    def _diagonal_stencil_2d():
        # 5 refs of A on a (BLOCK, BLOCK) grid; the diagonal ref comes
        # last, after the four faces have populated residency, so its
        # face-overlapping cells are subsumed cell-wise
        ds = DataSpace(P)
        ds.processors("PR", 4, 2)
        ds.declare("A", N, N)
        ds.declare("B", N, N)
        ds.distribute("A", [Block(), Block()], to="PR")
        ds.distribute("B", [Block(), Block()], to="PR")
        inner = Triplet(2, N - 1)

        def a(rows, cols):
            return ArrayRef("A", (Triplet(*rows), Triplet(*cols)))

        rhs = (a((1, N - 2), (2, N - 1)) + a((3, N), (2, N - 1))
               + a((2, N - 1), (1, N - 2)) + a((2, N - 1), (3, N))
               + a((1, N - 2), (1, N - 2)))
        stmt = Assignment(ArrayRef("B", (inner, inner)), rhs)
        g = ProgramGraph()
        g.assign(stmt)
        return ds, g

    def test_contained_shift_fully_skipped_exact(self):
        ds0, m0, _ = _run(self._shift_pair_1d, 0)
        ds2, m2, r2 = _run(self._shift_pair_1d, 2)
        # -O0: shift-2 moves 2(P-1), shift-1 moves (P-1)
        assert m0.stats.total_words == 3 * (P - 1)
        assert m2.stats.total_words == 2 * (P - 1)
        assert r2.savings["subsume_skips"] == 1
        assert m2.stats.opt_words_saved["subsume"] == P - 1
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds2.arrays[name].data,
                                          ds0.arrays[name].data)

    def test_diagonal_stencil_word_count_drops(self):
        ds0, m0, _ = _run(self._diagonal_stencil_2d, 0)
        ds2, m2, r2 = _run(self._diagonal_stencil_2d, 2)
        assert m2.stats.total_words < m0.stats.total_words
        assert m2.stats.opt_words_saved["subsume"] > 0
        # no full skip here: only the diagonal's face-overlapping cells
        # are resident; its corner cells still move
        assert r2.savings["subsume_skips"] == 0
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds2.arrays[name].data,
                                          ds0.arrays[name].data)

    def test_subsume_requires_O2(self):
        _, m1, r1 = _run(self._shift_pair_1d, 1)
        assert m1.stats.total_words == 3 * (P - 1)
        assert r1.savings["subsume_skips"] == 0


# ----------------------------------------------------------------------
# Loop replay legality (the SPMD worker-resident path)
# ----------------------------------------------------------------------
class TestReplayLegality:
    """The runner compiles a steady-state loop into a worker-resident
    replay program exactly when the loop is provably trip-invariant;
    anything layout-mutating inside the body forces the per-window
    dispatch fallback."""

    @staticmethod
    def _remap_loop():
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N, dynamic=True)
        ds.declare("B", N)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        stmt = Assignment(ArrayRef("A", (Triplet(2, N),)),
                          ArrayRef("B", (Triplet(1, N - 1),)))
        g = ProgramGraph()
        g.loop(6, [RedistributeNode("A", (Cyclic(),), "PR"),
                   StatementNode(stmt)])
        return ds, g

    @staticmethod
    def _alloc_loop():
        ds = DataSpace(P)
        ds.processors("PR", P)
        ds.declare("A", N)
        ds.declare("B", N)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        ds.declare("W", rank=1, allocatable=True)
        stmt = Assignment(ArrayRef("A", (Triplet(2, N),)),
                          ArrayRef("B", (Triplet(1, N - 1),)))
        g = ProgramGraph()
        g.loop(4, [StatementNode(stmt), AllocateNode("W", (8,)),
                   DeallocateNode("W")])
        return ds, g

    def _run_spmd(self, builder, opt_level=0):
        ds, graph = builder()
        _seed_arrays(ds)
        machine = DistributedMachine(MachineConfig(P))
        with ProgramRunner(ds, machine, backend="spmd",
                           opt_level=opt_level) as runner:
            result = runner.run(graph)
            counts = (runner.executor.replay_count,
                      runner.executor.dispatch_count)
        return ds, machine, result, counts

    def test_trip_invariant_loop_replays_bit_identically(self):
        ds, machine, result, (replays, dispatches) = \
            self._run_spmd(_jacobi)
        assert replays == 1
        assert dispatches == 0
        ds0, m0, r0 = _run(_jacobi, 0)
        assert len(result.reports) == len(r0.reports) == 30
        for name in ds0.arrays:
            np.testing.assert_array_equal(ds.arrays[name].data,
                                          ds0.arrays[name].data)
        np.testing.assert_array_equal(machine.stats.words_sent,
                                      m0.stats.words_sent)
        np.testing.assert_array_equal(machine.stats.msgs_sent,
                                      m0.stats.msgs_sent)
        assert machine.elapsed == m0.elapsed

    def test_mid_loop_remap_refuses_replay(self):
        ds, _, _, (replays, dispatches) = self._run_spmd(self._remap_loop)
        assert replays == 0
        assert dispatches == 6
        ds0, _, _ = _run(self._remap_loop, 0)
        np.testing.assert_array_equal(ds.arrays["A"].data,
                                      ds0.arrays["A"].data)

    def test_mid_loop_allocation_refuses_replay(self):
        ds, _, _, (replays, dispatches) = self._run_spmd(self._alloc_loop)
        assert replays == 0
        assert dispatches == 4
        ds0, _, _ = _run(self._alloc_loop, 0)
        np.testing.assert_array_equal(ds.arrays["A"].data,
                                      ds0.arrays["A"].data)

    def test_replay_blockers_name_each_cause(self):
        _, g = _jacobi()
        (loop,) = [n for n in g.nodes if isinstance(n, LoopNode)]
        assert replay_blockers(loop) == []
        assert loop.is_trip_invariant()

        _, g_remap = self._remap_loop()
        (loop,) = [n for n in g_remap.nodes if isinstance(n, LoopNode)]
        blockers = replay_blockers(loop)
        assert any("mid-loop remap" in b for b in blockers)
        assert not loop.is_trip_invariant()

        _, g_alloc = self._alloc_loop()
        (loop,) = [n for n in g_alloc.nodes if isinstance(n, LoopNode)]
        blockers = replay_blockers(loop)
        assert any("allocation flips storage" in b for b in blockers)
        assert any("deallocation flips storage" in b for b in blockers)
        assert not loop.is_trip_invariant()

        stmt = Assignment(ArrayRef("A", (Triplet(1, 4),)),
                          ArrayRef("A", (Triplet(1, 4),)))
        zero = LoopNode(0, (StatementNode(stmt),))
        assert any("zero-trip" in b for b in replay_blockers(zero))
        assert not zero.is_trip_invariant()
