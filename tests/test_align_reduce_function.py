"""Unit tests for §5.1 reduction transformations and alignment functions."""

import numpy as np
import pytest

from repro.align.ast import Call, Const, Dummy
from repro.align.function import AlignmentFunction, ClampMode, identity_alignment
from repro.align.reduce import ExprAxis, ReplicatedAxis, reduce_alignment
from repro.align.spec import (
    AlignSpec, AxisColon, AxisDummy, AxisStar,
    BaseExpr, BaseStar, BaseTriplet,
)
from repro.errors import AlignmentError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet


class TestSpecValidation:
    def test_duplicate_dummy_rejected(self):
        with pytest.raises(AlignmentError):
            AlignSpec("A", [AxisDummy("I"), AxisDummy("I")], "B",
                      [BaseExpr(Dummy("I")), BaseExpr(Dummy("I"))])

    def test_unbound_dummy_rejected(self):
        with pytest.raises(AlignmentError):
            AlignSpec("A", [AxisDummy("I")], "B", [BaseExpr(Dummy("J"))])

    def test_colon_triplet_count_mismatch(self):
        with pytest.raises(AlignmentError):
            AlignSpec("A", [AxisColon(), AxisColon()], "B",
                      [BaseTriplet()])


class TestReduction:
    def test_transformation_1_colon(self):
        # si = ':' matching tj = [LT:UT:ST] becomes (J - Li)*ST + LT
        spec = AlignSpec("A", [AxisColon()], "B",
                         [BaseTriplet(Const(5), Const(50), Const(5))])
        red = reduce_alignment(spec, IndexDomain.standard(10),
                               IndexDomain.standard(50))
        ax = red.base_axes[0]
        assert isinstance(ax, ExprAxis)
        assert ax.affine == (5, 0)    # (J-1)*5 + 5 == 5*J

    def test_extent_rule_enforced(self):
        # Ui - Li + 1 <= MAX(INT((UT-LT+ST)/ST), 0)
        spec = AlignSpec("A", [AxisColon()], "B",
                         [BaseTriplet(Const(1), Const(9), Const(5))])
        with pytest.raises(AlignmentError):
            reduce_alignment(spec, IndexDomain.standard(3),
                             IndexDomain.standard(9))
        # exactly fitting passes (9-1+5)//5 = 2 >= 2
        reduce_alignment(spec, IndexDomain.standard(2),
                         IndexDomain.standard(9))

    def test_transformation_2_star_collapse(self):
        spec = AlignSpec("B", [AxisColon(), AxisStar()], "E",
                         [BaseTriplet()])
        red = reduce_alignment(spec, IndexDomain.standard(4, 3),
                               IndexDomain.standard(4))
        assert len(red.dummy_names) == 2
        assert red.collapsed_axes == {1}

    def test_transformation_3_star_replicate(self):
        spec = AlignSpec("A", [AxisColon()], "D",
                         [BaseTriplet(), BaseStar()])
        red = reduce_alignment(spec, IndexDomain.standard(4),
                               IndexDomain.standard(4, 3))
        assert isinstance(red.base_axes[1], ReplicatedAxis)

    def test_skew_rejected(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I")), BaseExpr(Dummy("I") + 1)])
        with pytest.raises(AlignmentError):
            reduce_alignment(spec, IndexDomain.standard(4),
                             IndexDomain.standard(4, 5))

    def test_two_dummies_in_one_subscript_rejected(self):
        spec = AlignSpec("A", [AxisDummy("I"), AxisDummy("J")], "B",
                         [BaseExpr(Dummy("I") + Dummy("J")),
                          BaseExpr(Const(1))])
        with pytest.raises(AlignmentError):
            reduce_alignment(spec, IndexDomain.standard(3, 3),
                             IndexDomain.standard(9, 9))

    def test_rank_mismatch_rejected(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I"))])
        with pytest.raises(AlignmentError):
            reduce_alignment(spec, IndexDomain.standard(4, 4),
                             IndexDomain.standard(4))

    def test_env_folding(self):
        from repro.align.ast import Name
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Name("M") * Dummy("I"))])
        red = reduce_alignment(spec, IndexDomain.standard(8),
                               IndexDomain.standard(32), {"M": 4})
        assert red.base_axes[0].affine == (4, 0)

    def test_default_triplet_bounds(self):
        # ':' in the base means the whole dimension
        spec = AlignSpec("A", [AxisColon()], "B", [BaseTriplet()])
        red = reduce_alignment(spec, IndexDomain.of_bounds((0, 9)),
                               IndexDomain.of_bounds((0, 9)))
        assert red.base_axes[0].affine == (1, 0)

    def test_dummy_range(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I"))])
        red = reduce_alignment(spec, IndexDomain.of_bounds((3, 9)),
                               IndexDomain.of_bounds((1, 20)))
        assert red.dummy_range(0) == Triplet(3, 9, 1)


class TestAlignmentFunction:
    def make(self, spec, adom, bdom, clamp=ClampMode.CLAMP, env=None):
        return AlignmentFunction(
            reduce_alignment(spec, adom, bdom, env), clamp=clamp)

    def test_paper_example_1_replication(self):
        # ALIGN A(:) WITH D(:,*): alpha(J) = {(J,k) | 1 <= k <= M}
        n, m = 4, 3
        fn = self.make(
            AlignSpec("A", [AxisColon()], "D",
                      [BaseTriplet(), BaseStar()]),
            IndexDomain.standard(n), IndexDomain.standard(n, m))
        assert fn.image((2,)) == frozenset(
            (2, k) for k in range(1, m + 1))
        assert fn.is_replicating

    def test_paper_example_2_collapse(self):
        # ALIGN B(:,*) WITH E(:): alpha(J1,J2) = {(J1)}
        n, m = 4, 3
        fn = self.make(
            AlignSpec("B", [AxisColon(), AxisStar()], "E",
                      [BaseTriplet()]),
            IndexDomain.standard(n, m), IndexDomain.standard(n))
        for j2 in range(1, m + 1):
            assert fn.image((2, j2)) == frozenset({(2,)})
        assert fn.collapsed_axes == {1}

    def test_out_of_domain_index_rejected(self):
        fn = self.make(
            AlignSpec("A", [AxisDummy("I")], "B",
                      [BaseExpr(Dummy("I"))]),
            IndexDomain.standard(4), IndexDomain.standard(4))
        with pytest.raises(AlignmentError):
            fn.image((5,))

    def test_clamp_modes(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I") + 3)])
        adom, bdom = IndexDomain.standard(5), IndexDomain.standard(6)
        clamped = self.make(spec, adom, bdom, ClampMode.CLAMP)
        assert clamped.image((5,)) == frozenset({(6,)})
        paper = self.make(spec, adom, bdom, ClampMode.PAPER)
        assert paper.image((5,)) == frozenset({(6,)})
        exact = self.make(spec, adom, bdom, ClampMode.EXACT)
        with pytest.raises(AlignmentError):
            exact.image((5,))

    def test_paper_clamp_rejects_below_lower(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I") - 3)])
        fn = self.make(spec, IndexDomain.standard(5),
                       IndexDomain.standard(5), ClampMode.PAPER)
        with pytest.raises(AlignmentError):
            fn.image((1,))

    def test_truncation_with_max_min(self):
        # the paper's motivation for MAX/MIN: truncation at the ends
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Call("MAX",
                                        [Const(1), Dummy("I") - 1]))])
        fn = self.make(spec, IndexDomain.standard(5),
                       IndexDomain.standard(5), ClampMode.EXACT)
        assert fn.image((1,)) == frozenset({(1,)})
        assert fn.image((3,)) == frozenset({(2,)})

    def test_representative_and_map_indices(self):
        spec = AlignSpec("A", [AxisDummy("I")], "D",
                         [BaseExpr(2 * Dummy("I")), BaseStar()])
        fn = self.make(spec, IndexDomain.standard(4),
                       IndexDomain.standard(8, 3))
        assert fn.representative((2,)) == (4, 1)
        got = fn.map_indices(np.array([[1], [2], [3]]))
        np.testing.assert_array_equal(got, [[2, 1], [4, 1], [6, 1]])

    def test_image_arrays_column_major(self):
        spec = AlignSpec("B", [AxisDummy("I"), AxisDummy("J")], "T",
                         [BaseExpr(2 * Dummy("I")),
                          BaseExpr(2 * Dummy("J") - 1)])
        fn = self.make(spec, IndexDomain.standard(2, 2),
                       IndexDomain.standard(4, 4))
        got = fn.image_arrays()
        # column-major order of (1,1),(2,1),(1,2),(2,2)
        np.testing.assert_array_equal(
            got, [[2, 1], [4, 1], [2, 3], [4, 3]])

    def test_axis_triplet_image(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(2 * Dummy("I") - 1)])
        fn = self.make(spec, IndexDomain.standard(5),
                       IndexDomain.standard(9))
        img = fn.axis_triplet_image(0, Triplet(1, 5))
        assert img == Triplet(1, 9, 2)

    def test_axis_triplet_image_none_for_max(self):
        spec = AlignSpec("A", [AxisDummy("I")], "B",
                         [BaseExpr(Call("MAX", [Const(1), Dummy("I")]))])
        fn = self.make(spec, IndexDomain.standard(5),
                       IndexDomain.standard(5))
        assert fn.axis_triplet_image(0, Triplet(1, 5)) is None

    def test_identity_alignment(self):
        dom = IndexDomain.of_bounds((0, 4), (1, 3))
        fn = identity_alignment(dom)
        assert fn.image((2, 3)) == frozenset({(2, 3)})

    def test_identity_alignment_rebased(self):
        a = IndexDomain.of_bounds((0, 4))
        b = IndexDomain.of_bounds((1, 5))
        fn = identity_alignment(a, b)
        assert fn.image((0,)) == frozenset({(1,)})
        with pytest.raises(AlignmentError):
            identity_alignment(a, IndexDomain.standard(9))
