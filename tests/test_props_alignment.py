"""Property-based tests: alignment + CONSTRUCT invariants (Defs. 3-4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.ast import Dummy
from repro.align.function import AlignmentFunction, ClampMode
from repro.align.reduce import reduce_alignment
from repro.align.spec import AlignSpec, AxisDummy, AxisStar, BaseExpr, BaseStar
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.construct import construct
from repro.distributions.cyclic import Cyclic
from repro.fortran.domain import IndexDomain


@st.composite
def affine_cases(draw):
    """A 1-D affine alignment X(I) -> B(a*I + b), in-range."""
    n = draw(st.integers(1, 40))
    a = draw(st.integers(1, 4))
    b = draw(st.integers(1, 10))
    bn = a * n + b + draw(st.integers(0, 10))
    return n, a, b, bn


@given(affine_cases())
@settings(max_examples=100)
def test_affine_image_exact(case):
    n, a, b, bn = case
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(a * Dummy("I") + b)])
    fn = AlignmentFunction(
        reduce_alignment(spec, IndexDomain.standard(n),
                         IndexDomain.standard(bn)),
        clamp=ClampMode.EXACT)
    for i in range(1, n + 1):
        assert fn.image((i,)) == frozenset({(a * i + b,)})


@given(affine_cases())
@settings(max_examples=60)
def test_image_arrays_matches_pointwise(case):
    n, a, b, bn = case
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(a * Dummy("I") + b)])
    fn = AlignmentFunction(
        reduce_alignment(spec, IndexDomain.standard(n),
                         IndexDomain.standard(bn)))
    arr = fn.image_arrays()
    for i in range(1, n + 1):
        assert tuple(arr[i - 1]) == fn.representative((i,))


@given(affine_cases(), st.integers(1, 6),
       st.sampled_from(["block", "cyclic"]))
@settings(max_examples=80)
def test_construct_collocation_guarantee(case, np_, fmt_kind):
    """Definition 4 / §2.3: A(i) and B(j) share a processor for every
    j in alpha(i), under *any* distribution of B."""
    n, a, b, bn = case
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("B", bn)
    fmt = Block() if fmt_kind == "block" else Cyclic(2)
    ds.distribute("B", [fmt], to="PR")
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(a * Dummy("I") + b)])
    fn = AlignmentFunction(
        reduce_alignment(spec, IndexDomain.standard(n),
                         IndexDomain.standard(bn)))
    dist = construct(fn, ds.distribution_of("B"))
    for i in range(1, n + 1):
        owners = dist.owners((i,))
        for j in fn.image((i,)):
            assert ds.distribution_of("B").owners(j) <= owners


@given(st.integers(1, 20), st.integers(1, 8), st.integers(2, 6))
@settings(max_examples=60)
def test_replication_image_covers_dimension(n, m, np_):
    """ALIGN A(:) WITH D(:,*): each image spans the whole second axis."""
    from repro.align.spec import AxisColon, BaseTriplet
    spec = AlignSpec("A", [AxisColon()], "D",
                     [BaseTriplet(), BaseStar()])
    fn = AlignmentFunction(reduce_alignment(
        spec, IndexDomain.standard(n), IndexDomain.standard(n, m)))
    for i in range(1, n + 1):
        img = fn.image((i,))
        assert img == frozenset((i, k) for k in range(1, m + 1))


@given(st.integers(1, 20), st.integers(1, 8))
@settings(max_examples=60)
def test_collapse_image_independent_of_collapsed_axis(n, m):
    from repro.align.spec import AxisColon, BaseTriplet
    spec = AlignSpec("B", [AxisColon(), AxisStar()], "E",
                     [BaseTriplet()])
    fn = AlignmentFunction(reduce_alignment(
        spec, IndexDomain.standard(n, m), IndexDomain.standard(n)))
    for i in range(1, n + 1):
        images = {fn.image((i, j)) for j in range(1, m + 1)}
        assert images == {frozenset({(i,)})}


@given(affine_cases(), st.integers(2, 5))
@settings(max_examples=50)
def test_construct_owner_map_matches_pointwise(case, np_):
    n, a, b, bn = case
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("B", bn)
    ds.distribute("B", [Cyclic()], to="PR")
    spec = AlignSpec("X", [AxisDummy("I")], "B",
                     [BaseExpr(a * Dummy("I") + b)])
    fn = AlignmentFunction(reduce_alignment(
        spec, IndexDomain.standard(n), IndexDomain.standard(bn)))
    dist = construct(fn, ds.distribution_of("B"))
    pmap = dist.primary_owner_map()
    for i in range(1, n + 1):
        assert pmap[i - 1] == dist.primary_owner((i,))
