"""Unit tests for the DataSpace scope semantics (§2.4-§6)."""

import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisColon, AxisDummy, BaseExpr, BaseTriplet
from repro.core.dataspace import DataSpace
from repro.distributions.base import Collapsed
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import (
    AllocationError,
    DistributionError,
    MappingError,
)


def ident_spec(alignee, base):
    return AlignSpec(alignee, [AxisDummy("I")], base,
                     [BaseExpr(Dummy("I"))])


class TestDeclarationsAndTargets:
    def test_declare_and_domain(self, ds8):
        arr = ds8.declare("A", (0, 9), 5)
        assert arr.domain.shape == (10, 5)
        assert "A" in ds8.forest

    def test_duplicate_declare(self, ds8):
        ds8.declare("A", 4)
        with pytest.raises(MappingError):
            ds8.declare("A", 4)

    def test_scalar_declare(self, ds8):
        s = ds8.declare_scalar("T", 3.5)
        assert s.domain.rank == 0
        assert float(s.data[()]) == 3.5
        # scalars are replicated over all processors by default policy
        assert ds8.owners("T", ()) == frozenset(range(8))

    def test_resolve_target_by_name(self, ds8):
        target = ds8.resolve_target("PR", 1)
        assert target.size == 8

    def test_implicit_target_factorization(self):
        ds = DataSpace(12)
        t2 = ds._implicit_target(2)
        assert t2.size == 12 and sorted(t2.shape) == [3, 4]

    def test_implicit_distribution_policy(self, ds8):
        ds8.declare("A", 32, 4)
        dist = ds8.distribution_of("A")
        assert ds8.distribution_source("A") == "implicit"
        # default policy: BLOCK on dim 1, collapsed elsewhere
        assert dist.owners((1, 1)) == dist.owners((1, 4))
        assert dist.owners((1, 1)) != dist.owners((32, 1))


class TestDistribute:
    def test_explicit_distribution(self, ds8):
        ds8.declare("A", 64)
        ds8.distribute("A", [Block()], to="PR")
        assert ds8.distribution_source("A") == "explicit"
        assert ds8.owners("A", (1,)) == frozenset({0})
        assert ds8.owners("A", (64,)) == frozenset({7})

    def test_double_explicit_rejected(self, ds8):
        ds8.declare("A", 64)
        ds8.distribute("A", [Block()], to="PR")
        with pytest.raises(MappingError):
            ds8.distribute("A", [Cyclic()], to="PR")

    def test_distribute_secondary_rejected(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 64)
        ds8.align(ident_spec("B", "A"))
        with pytest.raises(MappingError):
            ds8.distribute("B", [Block()], to="PR")

    def test_all_colon_needs_target(self, ds8):
        ds8.declare("A", 8)
        with pytest.raises(DistributionError):
            ds8.distribute("A", [Collapsed()])

    def test_distribute_after_align_updates_secondary(self, ds8):
        # spec-part order: ALIGN first, DISTRIBUTE the base later
        ds8.declare("A", 64)
        ds8.declare("B", 64)
        ds8.align(ident_spec("B", "A"))
        ds8.distribute("A", [Cyclic()], to="PR")
        assert ds8.owners("B", (10,)) == ds8.owners("A", (10,))


class TestAlign:
    def test_align_derives_distribution(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 32)
        ds8.distribute("A", [Block()], to="PR")
        spec = AlignSpec("B", [AxisDummy("I")], "A",
                         [BaseExpr(2 * Dummy("I"))])
        ds8.align(spec)
        assert ds8.distribution_source("B") == "aligned"
        for i in (1, 16, 32):
            assert ds8.owners("B", (i,)) == ds8.owners("A", (2 * i,))

    def test_align_with_explicit_dist_rejected(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 64)
        ds8.distribute("B", [Block()], to="PR")
        with pytest.raises(MappingError):
            ds8.align(ident_spec("B", "A"))

    def test_align_uses_env_constants(self, ds8):
        from repro.align.ast import Name
        ds8.constant("M", 4)
        ds8.declare("A", 64)
        ds8.declare("B", 16)
        ds8.distribute("A", [Cyclic()], to="PR")
        spec = AlignSpec("B", [AxisDummy("I")], "A",
                         [BaseExpr(Name("M") * Dummy("I"))])
        ds8.align(spec)
        assert ds8.owners("B", (3,)) == ds8.owners("A", (12,))

    def test_align_drops_implicit_placement(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 64)
        _ = ds8.distribution_of("B")    # materialize implicit
        ds8.align(ident_spec("B", "A"))
        assert ds8.distribution_source("B") == "aligned"

    def test_colon_alignment_via_triplet(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 32)
        ds8.distribute("A", [Block()], to="PR")
        spec = AlignSpec("B", [AxisColon()], "A",
                         [BaseTriplet(None, None, None)])
        # extent rule: 32 <= 64 passes; B(J) -> A(J)
        ds8.align(spec)
        assert ds8.owners("B", (9,)) == ds8.owners("A", (9,))


class TestRedistributeRealign:
    def test_redistribute_requires_dynamic(self, ds8):
        ds8.declare("A", 64)
        ds8.distribute("A", [Block()], to="PR")
        with pytest.raises(MappingError):
            ds8.redistribute("A", [Cyclic()], to="PR")

    def test_redistribute_updates_secondaries(self, ds8):
        ds8.declare("A", 64, dynamic=True)
        ds8.declare("B", 64)
        ds8.distribute("A", [Block()], to="PR")
        ds8.align(ident_spec("B", "A"))
        before = ds8.owners("B", (5,))
        ds8.redistribute("A", [Cyclic()], to="PR")
        after = ds8.owners("B", (5,))
        assert before != after
        assert after == ds8.owners("A", (5,))   # invariant kept (§4.2)

    def test_redistribute_secondary_disconnects(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 64, dynamic=True)
        ds8.distribute("A", [Block()], to="PR")
        ds8.align(ident_spec("B", "A"))
        ds8.redistribute("B", [Cyclic()], to="PR")
        assert ds8.forest.is_degenerate("B")
        assert ds8.owners("B", (2,)) == frozenset({1})

    def test_realign_requires_dynamic(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("B", 64)
        ds8.distribute("A", [Block()], to="PR")
        with pytest.raises(MappingError):
            ds8.realign(ident_spec("B", "A"))

    def test_realign_moves_between_bases(self, ds8):
        ds8.declare("A", 64)
        ds8.declare("C", 64)
        ds8.declare("B", 64, dynamic=True)
        ds8.distribute("A", [Block()], to="PR")
        ds8.distribute("C", [Cyclic()], to="PR")
        ds8.align(ident_spec("B", "A"))
        ds8.realign(ident_spec("B", "C"))
        assert ds8.forest.parent_of("B") == "C"
        assert ds8.owners("B", (2,)) == ds8.owners("C", (2,))

    def test_realign_primary_freezes_secondaries(self, ds8):
        # §5.2 step 1: A's secondaries keep their current distribution
        ds8.declare("A", 64, dynamic=True)
        ds8.declare("B", 64)
        ds8.declare("C", 64)
        ds8.distribute("C", [Cyclic()], to="PR")
        ds8.distribute("A", [Block()], to="PR")
        ds8.align(ident_spec("B", "A"))
        frozen_owners = ds8.owners("B", (10,))
        ds8.set_dynamic("A")
        ds8.realign(ident_spec("A", "C"))
        assert ds8.forest.is_degenerate("B")
        assert ds8.distribution_source("B") == "frozen"
        assert ds8.owners("B", (10,)) == frozen_owners
        # A itself follows C now
        assert ds8.owners("A", (3,)) == ds8.owners("C", (3,))

    def test_remap_events_recorded(self, ds8):
        ds8.declare("A", 64, dynamic=True)
        ds8.distribute("A", [Block()], to="PR")
        ds8.redistribute("A", [Cyclic()], to="PR")
        reasons = [e.reason for e in ds8.remap_events]
        assert "DISTRIBUTE" in reasons and "REDISTRIBUTE" in reasons


class TestAllocatable:
    def test_pending_distribute_applied_at_allocate(self, ds8):
        ds8.declare("C", allocatable=True, rank=1)
        ds8.distribute("C", [Block()], to="PR")   # pending (§6)
        with pytest.raises(AllocationError):
            ds8.distribution_of("C")
        ds8.allocate("C", 80)
        assert ds8.distribution_source("C") == "explicit"
        assert ds8.owners("C", (1,)) == frozenset({0})

    def test_pending_align_applied_at_allocate(self, ds8):
        ds8.declare("A", 64)
        ds8.distribute("A", [Cyclic()], to="PR")
        ds8.declare("B", allocatable=True, rank=1)
        ds8.align(ident_spec("B", "A"))           # pending
        ds8.allocate("B", 64)
        assert ds8.forest.parent_of("B") == "A"

    def test_static_align_to_unallocated_base_rejected(self, ds8):
        # §6: a non-ALLOCATABLE local array cannot be aligned in the
        # spec part to an allocatable array
        ds8.declare("B", allocatable=True, rank=1)
        ds8.declare("A", 64)
        with pytest.raises(AllocationError):
            ds8.align(ident_spec("A", "B"))

    def test_deallocate_orphans_keep_distribution(self, ds8):
        ds8.declare("B", allocatable=True, rank=1, dynamic=True)
        ds8.declare("A", 64)
        ds8.allocate("B", 64)
        ds8.distribute("B", [Cyclic()], to="PR")
        ds8.align(ident_spec("A", "B"))
        owners = ds8.owners("A", (7,))
        ds8.deallocate("B")
        assert ds8.forest.is_degenerate("A")
        assert ds8.distribution_source("A") == "frozen"
        assert ds8.owners("A", (7,)) == owners
        assert not ds8.arrays["B"].is_allocated

    def test_reallocate_cycle(self, ds8):
        ds8.declare("C", allocatable=True, rank=1)
        ds8.distribute("C", [Block()], to="PR")
        for extent in (40, 80):
            ds8.allocate("C", extent)
            assert ds8.arrays["C"].domain.shape == (extent,)
            assert ds8.distribution_source("C") == "explicit"
            ds8.deallocate("C")

    def test_double_allocate_rejected(self, ds8):
        ds8.declare("C", allocatable=True, rank=1)
        ds8.allocate("C", 8)
        with pytest.raises(AllocationError):
            ds8.allocate("C", 8)

    def test_allocate_rank_mismatch(self, ds8):
        ds8.declare("C", allocatable=True, rank=2)
        with pytest.raises(AllocationError):
            ds8.allocate("C", 8)

    def test_deallocate_unallocated(self, ds8):
        ds8.declare("C", allocatable=True, rank=1)
        with pytest.raises(AllocationError):
            ds8.deallocate("C")


class TestIntrospection:
    def test_describe_runs(self, blocked_pair):
        text = blocked_pair.describe()
        assert "A" in text and "BLOCK" in text

    def test_owner_map_shape(self, blocked_pair):
        assert blocked_pair.owner_map("A").shape == (64,)

    def test_created_arrays(self, ds8):
        ds8.declare("A", 4)
        ds8.declare("B", allocatable=True, rank=1)
        assert ds8.created_arrays() == ("A",)
