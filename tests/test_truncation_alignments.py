"""End-to-end tests for the paper's extended alignment intrinsics.

§5.1: "Since linear expressions cannot handle some frequently occurring
cases, such as truncation at either end of the alignment, we also allow
the intrinsic functions MAX, MIN, LBOUND, UBOUND, and SIZE to be used in
alignment functions."  §8.1.1 adds that this extension "will suffice to
permit explicit alignment directives for many cases which occur in
practice, including this one [the staggered grid]."
"""


from repro.align.ast import Call, Const, Dummy, Name
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.directives.analyzer import run_program
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic


class TestTruncationViaApi:
    def test_max_truncation_left_edge(self):
        """ALIGN H(I) WITH A(MAX(1, I-1)): H(1) truncates onto A(1)."""
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 16)
        ds.declare("H", 16)
        ds.distribute("A", [Block()], to="PR")
        expr = Call("MAX", [Const(1), Dummy("I") - 1])
        ds.align(AlignSpec("H", [AxisDummy("I")], "A", [BaseExpr(expr)]))
        assert ds.owners("H", (1,)) == ds.owners("A", (1,))
        for i in range(2, 17):
            assert ds.owners("H", (i,)) == ds.owners("A", (i - 1,))

    def test_min_truncation_right_edge(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 16)
        ds.declare("H", 16)
        ds.distribute("A", [Cyclic()], to="PR")
        expr = Call("MIN", [Const(16), Dummy("I") + 1])
        ds.align(AlignSpec("H", [AxisDummy("I")], "A", [BaseExpr(expr)]))
        assert ds.owners("H", (16,)) == ds.owners("A", (16,))
        assert ds.owners("H", (7,)) == ds.owners("A", (8,))

    def test_inquiry_intrinsics_fold_against_declared_bounds(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", (0, 15))
        ds.declare("H", 16)
        ds.distribute("A", [Block()], to="PR")
        # MIN(UBOUND(A,1), I): clamps against A's declared upper bound
        expr = Call("MIN", [Call("UBOUND", [Name("A"), Const(1)]),
                            Dummy("I")])
        ds.align(AlignSpec("H", [AxisDummy("I")], "A", [BaseExpr(expr)]))
        assert ds.owners("H", (16,)) == ds.owners("A", (15,))
        assert ds.owners("H", (3,)) == ds.owners("A", (3,))

    def test_inquiries_track_allocation_instance(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("B", allocatable=True, rank=1)
        ds.allocate("B", 10)
        assert ds.env["SIZE(B, 1)"] == 10
        ds.deallocate("B")
        ds.allocate("B", 24)
        assert ds.env["SIZE(B, 1)"] == 24
        assert ds.env["UBOUND(B, 1)"] == 24


class TestTruncationViaDirectives:
    def test_max_min_through_front_end(self):
        res = run_program("""
      REAL A(16), H(16)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(BLOCK) TO PR
!HPF$ ALIGN H(I) WITH A(MAX(1, I-1))
""", n_processors=4)
        ds = res.ds
        assert ds.owners("H", (1,)) == ds.owners("A", (1,))
        assert ds.owners("H", (9,)) == ds.owners("A", (8,))

    def test_size_inquiry_through_front_end(self):
        res = run_program("""
      REAL A(12), H(20)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(CYCLIC) TO PR
!HPF$ ALIGN H(I) WITH A(MIN(SIZE(A, 1), I))
""", n_processors=4)
        ds = res.ds
        # beyond A's extent, H truncates onto A(12)
        for i in (13, 17, 20):
            assert ds.owners("H", (i,)) == ds.owners("A", (12,))
        assert ds.owners("H", (5,)) == ds.owners("A", (5,))

    def test_staggered_collocation_via_min(self):
        """§8.1.1: 'Our extension of the HPF alignment directive (which
        allows restricted usage of MAX and MIN), will suffice' — align
        U's extra row onto P's first row instead of needing a bigger
        index space."""
        res = run_program("""
      REAL P(16,16), U(0:16,1:16)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE P(BLOCK,:) TO PR
!HPF$ ALIGN U(I,J) WITH P(MAX(1, I), J)
""", n_processors=4)
        ds = res.ds
        # U(0,j) and U(1,j) both collocate with P(1,j): the staggered
        # boundary row is folded in, every P(i,j) update local in rows
        for j in (1, 8, 16):
            assert ds.owners("U", (0, j)) == ds.owners("P", (1, j))
        for i in (1, 7, 16):
            assert ds.owners("U", (i, 2)) == ds.owners("P", (i, 2))

    def test_stencil_locality_under_min_alignment(self):
        from repro.distributions.block import BlockVariant
        res = run_program("""
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE P(BLOCK,BLOCK) TO PR
!HPF$ ALIGN U(I,J) WITH P(MAX(1,I), J)
!HPF$ ALIGN V(I,J) WITH P(I, MAX(1,J))
      P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
""", n_processors=4, inputs={"N": 32}, machine=True,
            block_variant=BlockVariant.VIENNA)
        report = res.reports[0]
        assert report.locality > 0.9