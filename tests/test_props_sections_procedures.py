"""Property-based tests: section translation and procedure restore.

* section <-> parent index translation is bijective and composition-
  consistent for random sections (incl. scalar subscripts);
* an InheritedSectionDistribution's owner map equals the parent map
  restricted to the section;
* random sequences of procedure calls always restore the caller's
  mapping on exit (the §7 restore invariant).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataspace import DataSpace
from repro.core.procedures import (
    DummyMode,
    DummySpec,
    InheritedSectionDistribution,
    Procedure,
    distributions_equal,
)
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection
from repro.fortran.triplet import Triplet


@st.composite
def domains(draw):
    rank = draw(st.integers(1, 3))
    dims = []
    for _ in range(rank):
        lo = draw(st.integers(-5, 5))
        n = draw(st.integers(1, 12))
        dims.append(Triplet(lo, lo + n - 1, 1))
    return IndexDomain(dims)


@st.composite
def sections_of(draw, domain):
    subs = []
    for d in domain.dims:
        if draw(st.booleans()):
            subs.append(draw(st.integers(d.lower, d.last)))
        else:
            n = len(d)
            length = draw(st.integers(1, n))
            stride = draw(st.integers(1, 3))
            max_lo_pos = n - (length - 1) * stride
            if max_lo_pos < 1:
                stride = 1
                max_lo_pos = n - length + 1
            lo_pos = draw(st.integers(0, max_lo_pos - 1))
            lo = d.lower + lo_pos
            subs.append(Triplet(lo, lo + (length - 1) * stride, stride))
    return ArraySection(domain, tuple(subs))


@given(st.data())
@settings(max_examples=150)
def test_section_roundtrip(data):
    dom = data.draw(domains())
    sec = data.draw(sections_of(dom))
    for idx in sec.domain():
        parent = sec.to_parent(idx)
        assert sec.contains_parent(parent)
        assert sec.from_parent(parent) == idx
        assert parent in dom


@given(st.data())
@settings(max_examples=100)
def test_section_enumeration_matches_domain(data):
    dom = data.draw(domains())
    sec = data.draw(sections_of(dom))
    listed = list(sec.parent_indices())
    assert len(listed) == sec.size
    assert len(set(listed)) == len(listed)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_inherited_section_owner_map(data):
    np_ = data.draw(st.integers(2, 6))
    n = data.draw(st.integers(np_, 60))
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    fmt = data.draw(st.sampled_from(
        [Block(), Cyclic(), Cyclic(3)]))
    ds.distribute("A", [fmt], to="PR")
    dom = ds.arrays["A"].domain
    sec = data.draw(sections_of(dom))
    if sec.rank == 0:
        return
    inh = InheritedSectionDistribution(ds.distribution_of("A"), sec)
    pmap = inh.primary_owner_map()
    for idx in sec.domain():
        pos = tuple(v - 1 for v in idx)
        assert pmap[pos] == ds.distribution_of("A").primary_owner(
            sec.to_parent(idx))


@given(st.lists(st.sampled_from(["inherit", "explicit_cyclic",
                                 "explicit_block", "implicit"]),
                min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_procedure_calls_always_restore(modes):
    """§7: whatever sequence of calls (each possibly remapping the
    actual), the caller's mapping is restored after every return."""
    ds = DataSpace(4)
    ds.processors("PR", 4)
    ds.declare("A", 48)
    ds.distribute("A", [Block()], to="PR")
    original = ds.distribution_of("A")
    spec_of = {
        "inherit": DummySpec("X", DummyMode.INHERIT),
        "explicit_cyclic": DummySpec("X", DummyMode.EXPLICIT,
                                     formats=(Cyclic(),), to="PR"),
        "explicit_block": DummySpec("X", DummyMode.EXPLICIT,
                                    formats=(Block(),), to="PR"),
        "implicit": DummySpec("X", DummyMode.IMPLICIT),
    }
    for mode in modes:
        proc = Procedure("P", [spec_of[mode]], lambda frame, x: None)
        proc.call(ds, "A")
        assert distributions_equal(ds.distribution_of("A"), original)
