"""Integration tests: every code fragment in the paper, verbatim.

Each test quotes one example from the paper's text and checks the
semantics the surrounding prose claims for it.
"""

import numpy as np
import pytest

from repro.directives.analyzer import run_program


class TestSection4Examples:
    """§4: the DISTRIBUTE example block."""

    SRC = """
      PARAMETER (NOP = 8)
      REAL A(64), B(64), C(64), E(64, 4), F(64, 4)
      INTEGER S(1:3)
!HPF$ PROCESSORS Q(16)
!HPF$ DISTRIBUTE A(BLOCK)
!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)
!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S)) TO Q(1:4)
!HPF$ DISTRIBUTE (BLOCK, :) :: E,F
"""
    # (the paper leaves S and C's target implicit; S has 3 bounds, so the
    # target must provide NP = 4 processors — we pin it with a TO-clause)

    @pytest.fixture(scope="class")
    def res(self):
        return run_program(self.SRC, n_processors=16,
                           inputs={"S": [10, 30, 50]})

    def test_block_contiguous(self, res):
        pmap = res.ds.owner_map("A")
        assert (np.diff(pmap) >= 0).all()

    def test_cyclic_on_section(self, res):
        assert set(res.ds.distribution_of("B").processors()) == \
            {0, 2, 4, 6}
        # round robin over the section's 4 processors
        pmap = res.ds.owner_map("B")
        np.testing.assert_array_equal(pmap[:4], [0, 2, 4, 6])

    def test_general_block(self, res):
        pmap = res.ds.owner_map("C")
        assert pmap[9] == 0 and pmap[10] == 1
        assert pmap[29] == 1 and pmap[30] == 2
        assert pmap[49] == 2 and pmap[50] == 3

    def test_shared_format_block_colon(self, res):
        for name in ("E", "F"):
            pmap = res.ds.owner_map(name)
            assert (pmap == pmap[:, :1]).all()


class TestSection51Examples:
    """§5.1: the two ALIGN examples with their derived alignment
    functions."""

    def test_replication_example(self):
        # "aligns a copy of A with every column of D";
        # alpha(J) = {(J,k) | 1 <= k <= M}
        res = run_program("""
      REAL A(1:8), D(1:8,1:5)
!HPF$ ALIGN A(:) WITH D(:,*)
""", n_processors=4, inputs={})
        fn = res.ds.forest.alignment_of("A")
        for j in (1, 4, 8):
            assert fn.image((j,)) == frozenset(
                (j, k) for k in range(1, 6))

    def test_collapse_example(self):
        # alpha(J1, J2) = {(J1)}
        res = run_program("""
      REAL B(1:8,1:5), E(1:8)
!HPF$ ALIGN B(:,*) WITH E(:)
""", n_processors=4)
        fn = res.ds.forest.alignment_of("B")
        for j1 in (1, 5, 8):
            for j2 in (1, 3, 5):
                assert fn.image((j1, j2)) == frozenset({(j1,)})


class TestSection6Example:
    """§6: the allocatable-array example, complete."""

    SRC = """
      REAL,ALLOCATABLE(:,:) :: A,B
      REAL,ALLOCATABLE(:) :: C,D
!HPF$ PROCESSORS PR(32)
!HPF$ DISTRIBUTE A(CYCLIC,BLOCK)
!HPF$ DISTRIBUTE(BLOCK) :: C,D
!HPF$ DYNAMIC B,C

      READ 6,M,N

      ALLOCATE(A(N*M,N*M))
      ALLOCATE(B(N,N))
!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)
      ALLOCATE(C(10000), D(10000))
!HPF$ REDISTRIBUTE C(CYCLIC) TO PR
"""

    @pytest.fixture(scope="class")
    def res(self):
        return run_program(self.SRC, n_processors=32,
                           inputs={"M": 4, "N": 8})

    def test_a_created_with_propagated_attributes(self, res):
        assert res.ds.arrays["A"].domain.shape == (32, 32)
        assert res.ds.distribution_source("A") == "explicit"

    def test_b_realigned_to_a(self, res):
        assert res.ds.forest.parent_of("B") == "A"
        # B(i,j) collocated with A(M*i, M*(j-1)+1)
        for i, j in ((1, 1), (2, 3), (8, 8)):
            assert res.ds.owners("B", (i, j)) == \
                res.ds.owners("A", (4 * i, 4 * (j - 1) + 1))

    def test_c_redistributed_cyclic(self, res):
        assert res.ds.distribution_source("C") == "explicit"
        pmap = res.ds.owner_map("C")
        np.testing.assert_array_equal(pmap[:32], np.arange(32))

    def test_d_keeps_block(self, res):
        pmap = res.ds.owner_map("D")
        assert (np.diff(pmap) >= 0).all()

    def test_deallocate_b_detaches(self):
        res = run_program(self.SRC + "\n      DEALLOCATE(B)\n",
                          n_processors=32, inputs={"M": 4, "N": 8})
        assert not res.ds.arrays["B"].is_allocated
        assert "B" not in res.ds.forest


class TestSection811Staggered:
    """§8.1.1: the Thole staggered-grid example."""

    TEMPLATE_SRC = """
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ TEMPLATE T(0:2*N,0:2*N)
!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)
!HPF$ ALIGN U(I,J) WITH T(2*I,2*J-1)
!HPF$ ALIGN V(I,J) WITH T(2*I-1,2*J)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE T(CYCLIC,CYCLIC) TO PR
"""

    def test_template_cyclic_separates_all_neighbours(self):
        res = run_program(self.TEMPLATE_SRC, n_processors=4,
                          inputs={"N": 8}, model="template")
        ds = res.ds
        # "different processor allocations for any two neighbors"
        for i, j in ((1, 1), (3, 5), (8, 8)):
            p = ds.owners("P", (i, j))
            assert p != ds.owners("U", (i, j))
            assert p != ds.owners("U", (i - 1, j))
            assert p != ds.owners("V", (i, j))
            assert p != ds.owners("V", (i, j - 1))

    def test_disjoint_template_cells(self):
        # all arrays are aligned with disjoint template elements
        res = run_program(self.TEMPLATE_SRC, n_processors=4,
                          inputs={"N": 4}, model="template")
        ds = res.ds
        cells = set()
        for name in ("P", "U", "V"):
            _, chain = ds.ultimate_base(name)
            for idx in ds.arrays[name].domain:
                img = chain.image(idx)
                assert not (img & cells)
                cells |= img

    PAPER_SRC = """
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: U,V,P
      P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
"""

    def test_paper_solution_runs_and_is_local(self):
        from repro.distributions.block import BlockVariant
        res = run_program(self.PAPER_SRC, n_processors=4,
                          inputs={"N": 16}, machine=True,
                          block_variant=BlockVariant.VIENNA)
        report = res.reports[0]
        assert report.locality > 0.8
        # numeric check against the sequential semantics
        expected = np.zeros((16, 16))
        assert np.array_equal(res.ds.arrays["P"].data, expected)

    def test_numeric_correctness_of_stencil(self):
        src = self.PAPER_SRC.replace(
            "      P = ", "      U = 1\n      V = 2\n      P = ")
        res = run_program(src, n_processors=4, inputs={"N": 8},
                          machine=True)
        np.testing.assert_array_equal(res.ds.arrays["P"].data,
                                      np.full((8, 8), 6.0))


class TestSection812SectionArgument:
    """§8.1.2: A(1000) CYCLIC(3), CALL SUB(A(2:996:2))."""

    def test_template_spec_in_sub(self):
        # SUBROUTINE SUB(X); TEMPLATE T(1000); ALIGN X(I) WITH T(2*I);
        # DISTRIBUTE T(CYCLIC(3)) — run as a template-model scope
        sub = run_program("""
      REAL X(498)
!HPF$ PROCESSORS PR(4)
!HPF$ TEMPLATE T(1000)
!HPF$ ALIGN X(I) WITH T(2*I)
!HPF$ DISTRIBUTE T(CYCLIC(3)) TO PR
""", n_processors=4, model="template")
        caller = run_program("""
      REAL A(1000)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(CYCLIC(3)) TO PR
""", n_processors=4)
        # X(k) must live where A(2k) lives
        xmap = sub.ds.owner_map("X")
        amap = caller.ds.owner_map("A")
        np.testing.assert_array_equal(xmap, amap[1::2][:498])

    def test_paper_alternative_pass_whole_array(self):
        # the template-free alternative: pass A as well and
        # ALIGN X(I) WITH A(2*I)
        res = run_program("""
      REAL A(1000), X(498)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE A(CYCLIC(3)) TO PR
!HPF$ ALIGN X(I) WITH A(2*I)
""", n_processors=4)
        xmap = res.ds.owner_map("X")
        amap = res.ds.owner_map("A")
        np.testing.assert_array_equal(xmap, amap[1::2][:498])
