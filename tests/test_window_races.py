"""The independent SPMD window race checker vs. the window builder.

The fused SPMD path groups consecutive statements into fusion windows
executed under a single phase barrier; the legality contract is "no
RAW or WAR pair inside a window" (WAW is safe: writes apply in
statement order and the canonical download is per statement, in order).
:mod:`repro.engine.analysis` re-derives that contract independently —
a greedy pairwise planner (:func:`plan_windows`) and a conflict
detector (:func:`window_conflicts`) that never look at the executor's
running read/write sets.  These tests hold the two implementations to
each other over the 50-seed differential corpus, and exercise the
debug-mode assertion the SPMD executor runs when
``REPRO_DEBUG_WINDOWS`` is set.
"""

from __future__ import annotations

import pytest

from repro.engine.analysis import (
    assert_window_race_free,
    check_fusion_windows,
    plan_windows,
    window_conflicts,
)
from repro.engine.assignment import Assignment
from repro.engine.diagnostics import DiagnosticError
from repro.engine.expr import ArrayRef
from repro.engine.ir import ProgramGraph
from repro.engine.spmd import SpmdExecutor, fusion_windows
from tests.test_differential_random import N_CASES, _case, _statement


def _ref(name: str) -> ArrayRef:
    return ArrayRef(name)


def _stmt(lhs: str, *rhs: str) -> Assignment:
    expr = _ref(rhs[0])
    for r in rhs[1:]:
        expr = expr + _ref(r)
    return Assignment(_ref(lhs), expr)


# ----------------------------------------------------------------------
# Unit semantics of the checker
# ----------------------------------------------------------------------
def test_raw_conflict_detected():
    conflicts = window_conflicts([_stmt("A", "B"), _stmt("C", "A")])
    assert [(c.kind, c.i, c.j) for c in conflicts] == [("RAW", 0, 1)]
    assert conflicts[0].arrays == frozenset({"A"})


def test_war_conflict_detected():
    conflicts = window_conflicts([_stmt("C", "A"), _stmt("A", "B")])
    assert [(c.kind, c.i, c.j) for c in conflicts] == [("WAR", 0, 1)]


def test_waw_is_legal():
    assert window_conflicts([_stmt("A", "B"), _stmt("A", "C")]) == []


def test_own_lhs_in_rhs_is_legal():
    # the barrier orders a statement's reads before its writes
    assert window_conflicts([_stmt("A", "A", "B")]) == []


def test_assert_window_race_free():
    assert_window_race_free([_stmt("A", "B"), _stmt("C", "B")])
    with pytest.raises(DiagnosticError) as exc:
        assert_window_race_free([_stmt("A", "B"), _stmt("B", "A")])
    codes = {d.code for d in exc.value.diagnostics}
    assert codes == {"RPR009"}
    # both the RAW (A) and the WAR (B) pair are reported
    kinds = {d.array for d in exc.value.diagnostics}
    assert kinds == {"A", "B"}


def test_planner_matches_executor_on_handwritten_mixes():
    seqs = [
        [_stmt("A", "B"), _stmt("C", "D"), _stmt("E", "A")],
        [_stmt("A", "B"), _stmt("A", "C"), _stmt("B", "A")],
        [_stmt("X", "X"), _stmt("X", "Y"), _stmt("Y", "X")],
        [_stmt("A", "B")] * 5,
    ]
    for stmts in seqs:
        assert plan_windows(stmts) == fusion_windows(stmts)


def test_check_fusion_windows_clean_program():
    g = ProgramGraph()
    g.assign(_stmt("A", "B"))
    g.assign(_stmt("C", "A"))       # splits the window; no race
    g.loop(3, [_stmt("B", "A"), _stmt("B", "C")])
    assert check_fusion_windows(g) == []


# ----------------------------------------------------------------------
# The 50-seed differential property: the independent planner derives
# exactly the windows the executor forms, and every one is race free
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(N_CASES))
def test_race_checker_agrees_with_spmd_windows(seed):
    # concatenate a few corpus statements into one sequence; the cases
    # share the A/B/C name pool, so windows split at real conflicts
    stmts = [_statement(_case(s))
             for s in (seed, (seed + 1) % N_CASES, (seed + 2) % N_CASES)]
    planned = plan_windows(stmts)
    formed = fusion_windows(stmts)
    assert planned == formed, f"seed {seed}: planners disagree"
    # partition invariants: order-preserving, nothing lost
    assert [s for w in formed for s in w] == stmts
    # the legality contract: every window the executor would run under
    # one barrier is pairwise RAW/WAR free
    for window in formed:
        assert window_conflicts(window) == [], \
            f"seed {seed}: executor window races"
        assert_window_race_free(window)


def test_corpus_produces_multi_statement_windows():
    """The property test must not pass vacuously: the corpus mixes must
    produce both fused (>1 statement) and split windows."""
    fused = split = 0
    for seed in range(N_CASES):
        stmts = [_statement(_case(s))
                 for s in (seed, (seed + 1) % N_CASES,
                           (seed + 2) % N_CASES)]
        windows = fusion_windows(stmts)
        fused += sum(1 for w in windows if len(w) > 1)
        split += len(windows) - 1
    assert fused > 0
    assert split > 0


# ----------------------------------------------------------------------
# The debug-mode executor assertion (REPRO_DEBUG_WINDOWS)
# ----------------------------------------------------------------------
def test_debug_mode_checks_executor_windows(monkeypatch):
    import repro.engine.spmd as spmd_mod

    monkeypatch.setattr(spmd_mod, "_DEBUG_WINDOWS", True)
    case = _case(0)
    from tests.test_differential_random import _materialize
    ds = _materialize(case)
    stmt = _statement(case)
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import DistributedMachine
    machine = DistributedMachine(MachineConfig(case["p"]))
    with SpmdExecutor(ds, machine, mode="thread") as ex:
        reports = ex.execute_all([stmt, stmt])
    assert len(reports) == 2        # ran, and the assertion held


def test_debug_mode_rejects_a_racing_window(monkeypatch):
    """If the window builder ever grouped a RAW pair, debug mode must
    catch it — simulate the regression by bypassing the builder."""
    import repro.engine.spmd as spmd_mod

    monkeypatch.setattr(spmd_mod, "_DEBUG_WINDOWS", True)
    monkeypatch.setattr(spmd_mod, "fusion_windows",
                        lambda stmts: [list(stmts)])
    case = _case(0)
    from tests.test_differential_random import _materialize
    ds = _materialize(case)
    stmt = _statement(case)
    racing = Assignment(ArrayRef("B"), ArrayRef(stmt.lhs.name))
    from repro.machine.config import MachineConfig
    from repro.machine.simulator import DistributedMachine
    machine = DistributedMachine(MachineConfig(case["p"]))
    with SpmdExecutor(ds, machine, mode="thread") as ex:
        with pytest.raises(DiagnosticError):
            ex.execute_all([stmt, racing])


@pytest.mark.parametrize("value,expected",
                         [("1", "True"), ("yes", "True"),
                          ("0", "False"), ("", "False")])
def test_env_flag_parses(value, expected):
    # a fresh interpreter per value: reloading spmd in-process would
    # rebind its pickled task classes under the process pool
    import os
    import pathlib
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = {**os.environ, "REPRO_DEBUG_WINDOWS": value,
           "PYTHONPATH": src}
    out = subprocess.run(
        [sys.executable, "-c",
         "import repro.engine.spmd as m; print(m._DEBUG_WINDOWS)"],
        env=env, capture_output=True, text=True, check=True)
    assert out.stdout.strip() == expected
