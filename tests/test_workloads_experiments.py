"""Tests for workload generators, the experiment registry and the CLI."""

import numpy as np
import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import ExperimentResult, format_table
from repro.cli import main as cli_main
from repro.workloads.generators import seeded_rng, sweep
from repro.workloads.irregular import (
    imbalance_of_partition,
    power_law_costs,
    stepped_costs,
    triangular_costs,
)
from repro.workloads.stencil import jacobi_case, staggered_grid_case


class TestWorkloads:
    def test_triangular_costs(self):
        c = triangular_costs(5)
        np.testing.assert_array_equal(c, [1, 2, 3, 4, 5])

    def test_power_law(self):
        c = power_law_costs(4, 2.0)
        np.testing.assert_array_equal(c, [1, 4, 9, 16])

    def test_stepped_deterministic(self):
        a = stepped_costs(100, seed=3)
        b = stepped_costs(100, seed=3)
        np.testing.assert_array_equal(a, b)
        assert (a == 50.0).sum() == 10

    def test_imbalance_metric(self):
        costs = np.ones(8)
        owners = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        ratio, work = imbalance_of_partition(costs, owners, 2)
        assert ratio == 1.0
        np.testing.assert_array_equal(work, [4, 4])

    def test_sweep_deterministic_order(self):
        got = list(sweep(a=[1, 2], b=["x", "y"]))
        assert got[0] == {"a": 1, "b": "x"}
        assert got[-1] == {"a": 2, "b": "y"}
        assert len(got) == 4

    def test_seeded_rng_reproducible(self):
        assert seeded_rng("k", 1).integers(1 << 30) == \
            seeded_rng("k", 1).integers(1 << 30)

    def test_staggered_strategies_build(self):
        for strategy in ("template-cyclic", "template-block",
                         "direct-block", "direct-hpf-block",
                         "direct-cyclic", "direct-general-block",
                         "max-align"):
            case = staggered_grid_case(8, 2, 2, strategy)
            assert case.statement.iteration_size(case.ds) == 64

    def test_staggered_unknown_strategy(self):
        from repro.errors import MappingError
        with pytest.raises(MappingError):
            staggered_grid_case(8, 2, 2, "nope")

    def test_jacobi_case(self):
        case = jacobi_case(16, 2, 2)
        assert case.statement.iteration_size(case.ds) == 14 * 14

    def test_template_strategies_carry_tds(self):
        case = staggered_grid_case(8, 2, 2, "template-cyclic")
        assert case.tds is not None
        assert "T" in case.tds.templates


class TestHarness:
    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_result_render_and_checks(self):
        r = ExperimentResult("EX", "t", rows=[{"v": 1.23456}],
                             headline="h", checks={"ok": True})
        text = r.render()
        assert "EX" in text and "PASS" in text
        assert r.all_checks_pass
        r.checks["bad"] = False
        assert not r.all_checks_pass


class TestExperimentRegistry:
    def test_registry_complete(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 13)]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    # Small-parameter smoke runs of every experiment; all paper-claim
    # checks must PASS.
    @pytest.mark.parametrize("exp_id,kwargs", [
        ("E1", dict(n=64, nop=8)),
        ("E2", dict()),
        ("E3", dict(n=512, np_=4)),
        ("E4", dict(n=100, np_=4)),
        ("E5", dict(n=16, m=6, np_=4)),
        ("E6", dict(m=2, n=4, np_=32)),
        ("E7", dict(n=1000, np_=4)),
        ("E8", dict(n=32, rows_cols=(2, 2))),
        ("E9", dict(np_=4)),
        ("E10", dict(np_=4)),
        ("E11", dict(n=2000, depths=(1, 8))),
        ("E12", dict(cases=4, np_=4)),
    ])
    def test_experiment_checks_pass(self, exp_id, kwargs):
        result = run_experiment(exp_id, **kwargs)
        failing = [k for k, v in result.checks.items() if not v]
        assert not failing, f"{exp_id} failing checks: {failing}"
        assert result.rows, f"{exp_id} produced no rows"
        assert result.render()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "E12" in out

    def test_single_experiment(self, capsys):
        assert cli_main(["--experiment", "E4"]) == 0
        assert "CYCLIC" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_output_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        assert cli_main(["--experiment", "E4",
                         "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "E4" in text and "PASS" in text
