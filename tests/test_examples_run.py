"""Every example script must run cleanly (they are part of the public
deliverable; this keeps them from rotting)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

_CASES = [
    ("quickstart.py", []),
    ("staggered_grid.py", ["32"]),
    ("load_balancing.py", []),
    ("dynamic_remapping.py", []),
    ("section_arguments.py", []),
    ("jacobi_iteration.py", ["32", "3"]),
    ("indirect_distribution.py", []),
    ("phase_change.py", ["48", "3"]),
]


@pytest.mark.parametrize("script,args",
                         _CASES, ids=[c[0] for c in _CASES])
def test_example_runs(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run([sys.executable, str(path), *args],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, \
        f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_example_inventory_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {c[0] for c in _CASES}, \
        "update _CASES when adding examples"
