"""Every example script must run cleanly (they are part of the public
deliverable; this keeps them from rotting).

Examples run with DeprecationWarnings forced visible
(``PYTHONWARNINGS=always``: the default filter hides them outside
``__main__``) and the run fails if the repro shim message appears on
stderr: the examples are rewritten on the Session API, so neither they
nor library-internal code may lean on the deprecated top-level
re-exports.  (A ``module=`` filter cannot express this — the warnings
machinery matches it against origin file paths — hence the stderr
scan.)"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: make every DeprecationWarning print to stderr, wherever it fires
_GUARD = "always::DeprecationWarning"

#: the fingerprint of repro.__getattr__'s shim warning
_SHIM_MESSAGE = "is deprecated; import it from"

_CASES = [
    ("quickstart.py", []),
    ("staggered_grid.py", ["32"]),
    ("load_balancing.py", []),
    ("dynamic_remapping.py", []),
    ("section_arguments.py", []),
    ("jacobi_iteration.py", ["32", "3"]),
    ("indirect_distribution.py", []),
    ("phase_change.py", ["48", "3"]),
]


def _run(argv):
    env = dict(os.environ, PYTHONWARNINGS=_GUARD)
    return subprocess.run(argv, capture_output=True, text=True,
                          timeout=300, env=env)


@pytest.mark.parametrize("script,args",
                         _CASES, ids=[c[0] for c in _CASES])
def test_example_runs(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = _run([sys.executable, str(path), *args])
    assert proc.returncode == 0, \
        f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"
    assert _SHIM_MESSAGE not in proc.stderr, \
        f"{script} used a deprecated repro re-export:\n{proc.stderr}"


def test_do_loop_directive_program_runs():
    """The shipped DO-loop program through the CLI front door at -O2."""
    proc = _run([sys.executable, "-m", "repro", "run",
                 str(EXAMPLES / "jacobi_do.hpf"),
                 "--opt", "2", "-p", "4", "-D", "N=16"])
    assert proc.returncode == 0, proc.stderr
    assert "optimizer savings" in proc.stdout
    assert _SHIM_MESSAGE not in proc.stderr, \
        f"CLI run used a deprecated repro re-export:\n{proc.stderr}"


def test_example_inventory_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {c[0] for c in _CASES}, \
        "update _CASES when adding examples"
    assert (EXAMPLES / "jacobi_do.hpf").exists()
