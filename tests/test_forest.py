"""Unit tests for the alignment forest (§2.4) and its surgery rules."""

import pytest

from repro.align.forest import AlignmentForest
from repro.align.function import identity_alignment
from repro.errors import MappingError
from repro.fortran.domain import IndexDomain


def fn(n=8):
    return identity_alignment(IndexDomain.standard(n))


class TestStaticForest:
    def test_degenerate_tree(self):
        f = AlignmentForest()
        f.add("A")
        assert f.is_primary("A") and f.is_degenerate("A")
        assert f.parent_of("A") is None
        f.validate()

    def test_align_builds_tree(self):
        f = AlignmentForest()
        for n in ("A", "B", "C"):
            f.add(n)
        f.align("A", "B", fn())
        f.align("C", "B", fn())
        assert f.is_secondary("A") and f.is_primary("B")
        assert f.secondaries_of("B") == {"A", "C"}
        assert not f.is_degenerate("B")
        assert f.trees() == {"B": frozenset({"A", "C"})}
        f.validate()

    def test_constraint_2_single_base(self):
        f = AlignmentForest()
        for n in ("A", "B", "C"):
            f.add(n)
        f.align("A", "B", fn())
        with pytest.raises(MappingError):
            f.align("A", "C", fn())

    def test_constraint_1_base_not_aligned(self):
        f = AlignmentForest()
        for n in ("A", "B", "C"):
            f.add(n)
        f.align("B", "C", fn())
        with pytest.raises(MappingError):
            f.align("A", "B", fn())    # B is secondary

    def test_height_1_enforced(self):
        f = AlignmentForest()
        for n in ("A", "B", "C"):
            f.add(n)
        f.align("A", "B", fn())
        with pytest.raises(MappingError):
            f.align("B", "C", fn())    # B has children

    def test_self_alignment_rejected(self):
        f = AlignmentForest()
        f.add("A")
        with pytest.raises(MappingError):
            f.align("A", "A", fn())

    def test_unknown_node(self):
        f = AlignmentForest()
        with pytest.raises(MappingError):
            f.is_primary("A")

    def test_duplicate_add(self):
        f = AlignmentForest()
        f.add("A")
        with pytest.raises(MappingError):
            f.add("A")

    def test_alignment_of(self):
        f = AlignmentForest()
        f.add("A")
        f.add("B")
        g = fn()
        f.align("A", "B", g)
        assert f.alignment_of("A") is g
        assert f.alignment_of("B") is None


class TestRealign:
    def make(self):
        f = AlignmentForest()
        for n in ("A", "B", "C", "D"):
            f.add(n)
        return f

    def test_realign_secondary_moves(self):
        f = self.make()
        f.align("A", "B", fn())
        disconnected = f.realign("A", "C", fn())
        assert disconnected == []
        assert f.parent_of("A") == "C"
        assert f.is_degenerate("B")
        f.validate()

    def test_realign_to_same_base(self):
        # §5.2 step 1: "Note that B' = B is possible"
        f = self.make()
        f.align("A", "B", fn())
        f.realign("A", "B", fn(4) if False else fn())
        assert f.parent_of("A") == "B"
        f.validate()

    def test_realign_primary_disconnects_secondaries(self):
        # §5.2 step 1: secondaries become degenerate primaries
        f = self.make()
        f.align("B", "A", fn())
        f.align("C", "A", fn())
        disconnected = f.realign("A", "D", fn())
        assert sorted(disconnected) == ["B", "C"]
        assert f.is_primary("B") and f.is_degenerate("B")
        assert f.parent_of("A") == "D"
        f.validate()

    def test_realign_base_must_be_primary(self):
        f = self.make()
        f.align("B", "C", fn())
        with pytest.raises(MappingError):
            f.realign("A", "B", fn())

    def test_realign_self_rejected(self):
        f = self.make()
        with pytest.raises(MappingError):
            f.realign("A", "A", fn())


class TestRedistributeDisconnect:
    def test_secondary_disconnected(self):
        # §4.2: a secondary distributee becomes a new degenerate tree
        f = AlignmentForest()
        f.add("A")
        f.add("B")
        f.align("B", "A", fn())
        old_base = f.disconnect_for_redistribute("B")
        assert old_base == "A"
        assert f.is_degenerate("B") and f.is_degenerate("A")
        f.validate()

    def test_primary_untouched(self):
        f = AlignmentForest()
        f.add("A")
        f.add("B")
        f.align("B", "A", fn())
        assert f.disconnect_for_redistribute("A") is None
        assert f.secondaries_of("A") == {"B"}
        f.validate()


class TestRemove:
    def test_remove_base_orphans_children(self):
        # §6 DEALLOCATE: aligned arrays become new primaries
        f = AlignmentForest()
        for n in ("A", "B", "C"):
            f.add(n)
        f.align("A", "B", fn())
        f.align("C", "B", fn())
        orphans = f.remove("B")
        assert orphans == ["A", "C"]
        assert f.is_degenerate("A") and f.is_degenerate("C")
        assert "B" not in f
        f.validate()

    def test_remove_secondary(self):
        f = AlignmentForest()
        f.add("A")
        f.add("B")
        f.align("B", "A", fn())
        assert f.remove("B") == []
        assert f.is_degenerate("A")
        f.validate()

    def test_primaries_listing(self):
        f = AlignmentForest()
        for n in ("X", "Y", "Z"):
            f.add(n)
        f.align("Y", "X", fn())
        assert f.primaries() == ("X", "Z")
