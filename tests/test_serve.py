"""The serving stack: cross-session plan store, request queue, client.

Covers the four serving guarantees:

* **sharing** — a second session running the same program through a
  service adopts every compiled plan (zero compiles) while its
  numerics, words matrices and accountant ledgers stay bit-identical
  to a solo run, at ``-O0`` and ``-O2``, on both backends;
* **concurrency** — N threads hammering one service stay bit-identical
  per session, and once the store is warm the stress phase is all hits
  (rate > 0.9);
* **isolation** — per-session accountants, per-service stores, the
  thread-safety of the per-scope :class:`ScheduleCache`, and the
  fine-grained survival of warm SPMD window plans across mid-session
  ALLOCATE;
* **the wire** — the ``repro serve`` socket server and
  :class:`ServiceClient` round-trip, including the cross-submit hit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api.session import Session
from repro.core.dataspace import ScheduleCache
from repro.distributions.block import Block
from repro.errors import MachineError
from repro.machine.backend import Backend
from repro.serve import (
    PlanStore,
    ServiceTimeout,
    SessionService,
    swapped_plan_store,
)

N = 24          #: Jacobi grid edge
TRIPS = 3       #: loop trips per program


def _record_jacobi(s: Session) -> None:
    pr = s.processors("PR", 2, 2)
    u = s.array("U", N, N).distribute(Block(), Block(), to=pr)
    f = s.array("F", N, N).distribute(Block(), Block(), to=pr)
    s.ds.arrays["U"].data[:] = np.arange(float(N * N)).reshape(N, N)
    s.ds.arrays["F"].data[:] = 1.0
    with s.loop(TRIPS):
        u[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:]) \
            + f[1:-1, 1:-1]


def _run_jacobi(**kwargs) -> Session:
    s = Session(4, **kwargs)
    _record_jacobi(s)
    s.run()
    return s


def _count_compiles(monkeypatch):
    """Patch the schedule compiler with a call counter."""
    import repro.engine.schedule as schedule_mod
    real = schedule_mod._compile
    calls = []

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(schedule_mod, "_compile", counting)
    return calls


# ----------------------------------------------------------------------
# Cross-session plan sharing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("opt", [0, 2])
@pytest.mark.parametrize("backend", ["simulate", "spmd"])
def test_second_session_compiles_nothing(backend, opt, monkeypatch):
    spec = (Backend.simulate() if backend == "simulate"
            else Backend.spmd(mode="thread"))
    solo = _run_jacobi(backend=spec, opt=opt)  # private store: reference
    with SessionService(plan_store=PlanStore()) as svc:
        a = _run_jacobi(service=svc, backend=spec, opt=opt)
        before = svc.store.stats()
        calls = _count_compiles(monkeypatch)
        b = _run_jacobi(service=svc, backend=spec, opt=opt)
        after = svc.store.stats()

        # tenant B rode entirely on tenant A's compiled plans
        assert calls == [], "second session compiled a schedule"
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]

        # ... with numerics, words and ledgers bit-identical to the
        # solo session (accountant isolation: sharing plans never
        # shares accounting state)
        for s in (a, b):
            np.testing.assert_array_equal(s.ds.arrays["U"].data,
                                          solo.ds.arrays["U"].data)
            assert len(s.reports) == len(solo.reports)
            for r, ref in zip(s.reports, solo.reports):
                np.testing.assert_array_equal(r.words, ref.words)
                assert r.patterns == ref.patterns
            np.testing.assert_array_equal(s.machine.stats.words_sent,
                                          solo.machine.stats.words_sent)
            np.testing.assert_array_equal(s.machine.stats.msgs_sent,
                                          solo.machine.stats.msgs_sent)
            assert s.machine.elapsed == solo.machine.elapsed
            s.close()
    solo.close()


def test_service_store_isolated_from_global():
    from repro.serve import store_stats
    g0 = store_stats()
    with SessionService(plan_store=PlanStore()) as svc:
        s = _run_jacobi(service=svc, backend=Backend.simulate())
        assert svc.store.stats()["entries"] > 0
        s.close()
    assert store_stats() == g0   # nothing leaked into the global store


def test_plan_adoption_restamps_epoch():
    """An adopted schedule carries the *adopter's* layout epoch, so a
    later remap in the adopting scope invalidates it normally."""
    with SessionService(plan_store=PlanStore()) as svc:
        a = _run_jacobi(service=svc, backend=Backend.simulate())
        b = Session(4, service=svc, backend=Backend.simulate())
        # age the adopting scope's epoch before it runs anything (a
        # distribute of an unrelated array bumps the layout epoch)
        b.ds.processors("SPARE", 4)
        b.ds.declare("PAD", 8)
        b.ds.distribute("PAD", [Block()], to="SPARE")
        _record_jacobi(b)
        b.run()
        key = next(iter(b.ds.schedule_cache._entries))
        sched = b.ds.schedule_cache._entries[key][0]
        assert sched.epoch == b.ds.layout_epoch
        assert b.ds.layout_epoch != a.ds.layout_epoch
        a.close()
        b.close()


def test_session_service_requires_machine():
    with SessionService() as svc:
        with pytest.raises(MachineError):
            Session(4, service=svc, machine=False)


def test_pool_key_groups_compatible_specs():
    a = Backend.spmd(workers=4, mode="thread")
    b = Backend.spmd(workers=4, mode="thread", use_overlap=True,
                     strategy="oracle")
    c = Backend.spmd(workers=4, mode="process")
    # compilation-only fields don't split pools; substrate fields do
    assert a.pool_key == b.pool_key
    assert a.pool_key != c.pool_key
    assert Backend.simulate().pool_key != a.pool_key


# ----------------------------------------------------------------------
# Concurrency: the stress test (ISSUE satellite 4)
# ----------------------------------------------------------------------
def test_concurrent_sessions_identical_and_warm():
    n_threads = 6
    solo = _run_jacobi(backend=Backend.spmd(mode="thread"), opt=2)
    with SessionService(plan_store=PlanStore()) as svc:
        # warm the store once, then measure the stress phase alone
        warm = _run_jacobi(service=svc,
                           backend=Backend.spmd(mode="thread"), opt=2)
        before = svc.store.stats()

        barrier = threading.Barrier(n_threads)
        sessions: list[Session | None] = [None] * n_threads
        errors: list[BaseException] = []

        def tenant(i: int) -> None:
            try:
                s = Session(4, service=svc,
                            backend=Backend.spmd(mode="thread"), opt=2)
                _record_jacobi(s)
                barrier.wait()
                s.run()
                sessions[i] = s
            except BaseException as exc:   # pragma: no cover - fails test
                errors.append(exc)

        threads = [threading.Thread(target=tenant, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        # every tenant's numerics, reports and ledgers are bit-identical
        # to the solo run — sharing plans never mixes accounting
        for s in sessions:
            assert s is not None
            np.testing.assert_array_equal(s.ds.arrays["U"].data,
                                          solo.ds.arrays["U"].data)
            for r, ref in zip(s.reports, solo.reports):
                np.testing.assert_array_equal(r.words, ref.words)
            np.testing.assert_array_equal(s.machine.stats.words_sent,
                                          solo.machine.stats.words_sent)
            assert s.machine.elapsed == solo.machine.elapsed
            s.close()

        # the stress phase ran hot: every plan request after the warmup
        # was answered from the shared store
        after = svc.store.stats()
        phase = (after["hits"] - before["hits"],
                 after["misses"] - before["misses"])
        assert phase[0] > 0
        rate = phase[0] / sum(phase)
        assert rate > 0.9, f"stress-phase hit rate {rate:.3f}"
        warm.close()
    solo.close()


# ----------------------------------------------------------------------
# The request queue: timeout + graceful restart
# ----------------------------------------------------------------------
def test_request_timeout_abandons_and_recovers():
    with SessionService() as svc:
        release = threading.Event()
        with pytest.raises(ServiceTimeout):
            svc.submit(lambda: release.wait(5), pool_key=("x",),
                       timeout=0.05)
        release.set()   # let the dispatcher finish the abandoned work
        assert svc.timeouts == 1
        # the dispatcher survives and keeps serving the same pool
        assert svc.submit(lambda: 42, pool_key=("x",), timeout=5) == 42


def test_errors_propagate_and_queue_survives():
    with SessionService() as svc:
        with pytest.raises(ValueError, match="boom"):
            svc.submit(lambda: (_ for _ in ()).throw(ValueError("boom")),
                       pool_key=("x",), timeout=5)
        assert svc.submit(lambda: "ok", pool_key=("x",), timeout=5) == "ok"


def test_failed_run_restarts_pool_and_stays_warm(monkeypatch):
    with SessionService(plan_store=PlanStore()) as svc:
        s = _run_jacobi(service=svc, backend=Backend.spmd(mode="thread"))
        reference = [np.array(r.words) for r in s.reports]
        runner = svc._runners[id(s)]

        # a request that dies mid-flight triggers the graceful restart
        def dying(graph, on_node=None):
            raise MachineError("worker died")

        monkeypatch.setattr(runner, "run", dying)
        with pytest.raises(MachineError, match="worker died"):
            svc.run(s, s.builder.take())
        assert svc.restarts == 1
        monkeypatch.undo()

        # the restarted pool still serves the session, bit-identically,
        # without recompiling (schedule cache + plan store stay warm)
        before = svc.store.stats()["misses"]
        _record_jacobi_body(s)
        s.run()
        assert svc.store.stats()["misses"] == before
        for r, ref in zip(s.reports[len(reference):], reference):
            np.testing.assert_array_equal(r.words, ref)
        s.close()


def _record_jacobi_body(s: Session) -> None:
    """Re-record the loop body of an already-declared Jacobi session."""
    from repro.api.array import DistributedArray
    u = DistributedArray(s, "U")
    f = DistributedArray(s, "F")
    with s.loop(TRIPS):
        u[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:]) \
            + f[1:-1, 1:-1]


# ----------------------------------------------------------------------
# ScheduleCache thread safety (ISSUE satellite 1)
# ----------------------------------------------------------------------
def test_schedule_cache_concurrent_churn():
    """Barrier-released threads churn one small cache through the
    eviction path.  Without the cache's internal lock this interleaves
    ``len`` checks with ``_unlink(next(iter(...)))`` across threads and
    dies with KeyError/RuntimeError (dict mutated during iteration);
    with it, the run is clean and the structure stays consistent."""
    cache = ScheduleCache(maxsize=4)
    n_threads, n_iters = 8, 300
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def churn(tid: int) -> None:
        try:
            barrier.wait()
            for i in range(n_iters):
                key = ("stmt", tid, i)
                cache.put(key, object(), arrays={f"A{tid}", "SHARED"})
                cache.get(key)
                cache.get(("stmt", (tid + 1) % n_threads, i))
                if i % 50 == 49:
                    cache.invalidate_arrays({"SHARED"})
        except BaseException as exc:   # pragma: no cover - fails test
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"cache race: {errors[:1]!r}"
    # structural invariants survived the churn
    assert len(cache) <= 4
    with cache._lock:
        for name, keys in cache._by_array.items():
            for key in keys:
                assert key in cache._entries
    assert cache.misses == n_threads * n_iters


def test_schedule_cache_concurrent_put_keeps_first():
    cache = ScheduleCache(maxsize=8)
    first, second = object(), object()
    cache.put("k", first, arrays={"A"})
    cache.put("k", second, arrays={"A"})   # the losing compiler's put
    assert cache.get("k") is first


# ----------------------------------------------------------------------
# Warm-plan survival across ALLOCATE (ISSUE satellite 3)
# ----------------------------------------------------------------------
def test_allocate_keeps_unrelated_window_plans_warm(monkeypatch):
    """A mid-session ALLOCATE of an unrelated allocatable must not cold
    the SPMD executor's per-peer window plans for untouched forests:
    the same task split (same objects) serves the next run."""
    with swapped_plan_store(None):   # isolate from cross-session stores
        s = Session(4, backend=Backend.spmd(mode="thread"))
        _record_jacobi(s)
        s.ds.declare("SCRATCH", allocatable=True, rank=1)
        s.run()
        executor = s._runner.executor
        warm_ids = {id(v) for v in executor._tasks.values()}
        assert warm_ids

        calls = _count_compiles(monkeypatch)
        s.ds.allocate("SCRATCH", 16)      # bumps the layout epoch
        _record_jacobi_body(s)
        s.run()
        after_ids = {id(v) for v in executor._tasks.values()}

        # no recompiles, and the warm splits are the same objects
        assert calls == []
        assert warm_ids <= after_ids
        s.close()


# ----------------------------------------------------------------------
# The wire: serve_forever + ServiceClient round-trip
# ----------------------------------------------------------------------
JACOBI_SRC = """\
      READ 6,N
      REAL X(N,N), XNEW(N,N)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: X, XNEW
      DO K = 1, 3
      XNEW(2:N-1,2:N-1) = 0.25 * (X(1:N-2,2:N-1) + X(3:N,2:N-1) + X(2:N-1,1:N-2) + X(2:N-1,3:N))
      X(2:N-1,2:N-1) = XNEW(2:N-1,2:N-1)
      END DO
"""


def test_socket_service_round_trip(tmp_path):
    from repro.serve import ServiceClient, serve_forever

    address = str(tmp_path / "serve.sock")
    if len(address) > 90:   # AF_UNIX path limit headroom
        import tempfile
        address = tempfile.mktemp(suffix=".sock", dir="/tmp")
    service = SessionService(plan_store=PlanStore())
    ready = threading.Event()
    server = threading.Thread(
        target=serve_forever, args=(address,),
        kwargs={"service": service, "ready": ready}, daemon=True)
    server.start()
    assert ready.wait(10)
    client = ServiceClient(address)
    try:
        assert client.ping()

        first = client.run_source(JACOBI_SRC, defines={"N": 16},
                                  backend="spmd", mode="thread", opt=2,
                                  timeout=60)
        assert first["request_misses"] > 0
        assert len(first["reports"]) == 2 * 3   # 2 statements x 3 trips

        # the second tenant — different pool mode, same program — rides
        # the first one's plans end to end
        second = client.run_source(JACOBI_SRC, defines={"N": 16},
                                   backend="spmd", mode="process", opt=2,
                                   timeout=60)
        assert second["request_misses"] == 0
        assert second["request_hits"] > 0
        assert second["reports"] == first["reports"]
        assert second["total_words"] == first["total_words"]
        assert second["elapsed"] == first["elapsed"]

        stats = client.stats()
        assert stats["plan_store"]["hits"] >= second["request_hits"]
    finally:
        client.shutdown()
        server.join(timeout=10)
        service.close()
    assert not server.is_alive()


def test_socket_error_reply(tmp_path):
    from repro.serve import ServiceClient, serve_forever

    address = str(tmp_path / "err.sock")
    if len(address) > 90:
        import tempfile
        address = tempfile.mktemp(suffix=".sock", dir="/tmp")
    service = SessionService()
    ready = threading.Event()
    server = threading.Thread(
        target=serve_forever, args=(address,),
        kwargs={"service": service, "ready": ready}, daemon=True)
    server.start()
    assert ready.wait(10)
    client = ServiceClient(address)
    try:
        with pytest.raises(RuntimeError, match="service error"):
            client.run_source("THIS IS NOT A PROGRAM ???", timeout=30)
        assert client.request({"op": "nope"})["ok"] is False
    finally:
        client.shutdown()
        server.join(timeout=10)
        service.close()
