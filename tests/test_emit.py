"""Tests for the directive emitter: mapping snapshots round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr, BaseStar
from repro.core.dataspace import DataSpace
from repro.directives.analyzer import run_program
from repro.directives.emit import emit_program
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.distributions.indirect import Indirect
from repro.errors import DirectiveError


def roundtrip(ds: DataSpace) -> DataSpace:
    emitted = emit_program(ds)
    res = run_program(emitted.source, n_processors=ds.ap.size,
                      inputs=emitted.inputs)
    return res.ds


class TestEmit:
    def test_simple_block(self):
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.declare("A", 64)
        ds.distribute("A", [Block()], to="PR")
        out = emit_program(ds)
        assert "!HPF$ DISTRIBUTE A(BLOCK) TO PR(1:8)" in out.source
        ds2 = roundtrip(ds)
        np.testing.assert_array_equal(ds.owner_map("A"),
                                      ds2.owner_map("A"))

    def test_alignment_emitted(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 64)
        ds.declare("B", 30)
        ds.distribute("A", [Cyclic(2)], to="PR")
        ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(2 * Dummy("I") + 1)]))
        out = emit_program(ds)
        assert "ALIGN B(I) WITH A(" in out.source
        ds2 = roundtrip(ds)
        np.testing.assert_array_equal(ds.owner_map("B"),
                                      ds2.owner_map("B"))

    def test_replicating_alignment_emitted_as_star(self):
        ds = DataSpace(4)
        ds.processors("PR", 2, 2)
        ds.declare("D", 8, 8)
        ds.declare("A", 8)
        ds.distribute("D", [Block(), Block()], to="PR")
        ds.align(AlignSpec("A", [AxisDummy("I")], "D",
                           [BaseExpr(Dummy("I")), BaseStar()]))
        out = emit_program(ds)
        assert "WITH D(I, *)" in out.source
        ds2 = roundtrip(ds)
        for i in (1, 5, 8):
            assert ds.owners("A", (i,)) == ds2.owners("A", (i,))

    def test_general_block_via_inputs(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 40)
        ds.distribute("A", [GeneralBlock([5, 17, 30])], to="PR")
        out = emit_program(ds)
        assert "GENERAL_BLOCK(MAP1)" in out.source
        assert out.inputs["MAP1"] == [5, 17, 30]
        ds2 = roundtrip(ds)
        np.testing.assert_array_equal(ds.owner_map("A"),
                                      ds2.owner_map("A"))

    def test_indirect_via_inputs(self):
        rng = np.random.default_rng(3)
        mapping = rng.integers(0, 4, size=24)
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 24)
        ds.distribute("A", [Indirect(mapping)], to="PR")
        ds2 = roundtrip(ds)
        np.testing.assert_array_equal(ds.owner_map("A"),
                                      ds2.owner_map("A"))

    def test_dynamic_state_flattens(self):
        # after REALIGN/REDISTRIBUTE surgery, the emitted program is a
        # plain spec-part description of the *current* state
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.declare("A", 64, dynamic=True)
        ds.declare("B", 64, dynamic=True)
        ds.distribute("A", [Block()], to="PR")
        ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(Dummy("I"))]))
        ds.redistribute("A", [Cyclic(3)], to="PR")
        ds2 = roundtrip(ds)
        for name in ("A", "B"):
            np.testing.assert_array_equal(ds.owner_map(name),
                                          ds2.owner_map(name))
        assert ds2.forest_snapshot() == ds.forest_snapshot()

    def test_vienna_block_not_emittable(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 16)
        ds.distribute("A", [Block(variant=BlockVariant.VIENNA)], to="PR")
        with pytest.raises(DirectiveError):
            emit_program(ds)


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(data):
    """emit -> run -> identical owner maps, over random mapping states."""
    np_ = data.draw(st.integers(2, 6))
    n = data.draw(st.integers(np_, 50))
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n, dynamic=True)
    fmt = data.draw(st.sampled_from(["block", "cyclic", "cyclick",
                                     "gb", "indirect"]))
    if fmt == "block":
        ds.distribute("A", [Block()], to="PR")
    elif fmt == "cyclic":
        ds.distribute("A", [Cyclic()], to="PR")
    elif fmt == "cyclick":
        ds.distribute("A", [Cyclic(data.draw(st.integers(2, 5)))],
                      to="PR")
    elif fmt == "gb":
        cuts = sorted(data.draw(st.lists(st.integers(0, n),
                                         min_size=np_ - 1,
                                         max_size=np_ - 1)))
        ds.distribute("A", [GeneralBlock(cuts)], to="PR")
    else:
        mapping = data.draw(st.lists(st.integers(0, np_ - 1),
                                     min_size=n, max_size=n))
        ds.distribute("A", [Indirect(mapping)], to="PR")
    # optionally an aligned secondary
    if data.draw(st.booleans()) and n >= 4:
        a = data.draw(st.integers(1, min(3, n - 1)))
        b_extent = max((n - 1) // a, 1)
        off = data.draw(st.integers(0, max(n - a * b_extent, 0)))
        ds.declare("B", b_extent)
        ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(a * Dummy("I") + off)]))
    ds2 = roundtrip(ds)
    for name in ds.created_arrays():
        np.testing.assert_array_equal(ds.owner_map(name),
                                      ds2.owner_map(name))