"""Unit tests for the processor model (S2, §3)."""

import pytest

from repro.errors import MappingError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import (
    ProcessorArrangement,
    ScalarArrangement,
    ScalarPolicy,
)
from repro.processors.section import ProcessorSection
from repro.processors.topology import FullyConnected, Hypercube, Line, Mesh2D


class TestArrangements:
    def test_array_arrangement(self):
        pr = ProcessorArrangement("PR", IndexDomain.standard(4, 8))
        assert pr.rank == 2 and pr.size == 32 and pr.shape == (4, 8)

    def test_empty_domain_rejected(self):
        with pytest.raises(MappingError):
            ProcessorArrangement("PR", IndexDomain([Triplet(1, 0)]))

    def test_rank0_rejected(self):
        with pytest.raises(MappingError):
            ProcessorArrangement("PR", IndexDomain.scalar())

    def test_scalar_arrangement(self):
        s = ScalarArrangement("CTRL")
        assert s.rank == 0 and s.size == 1
        assert s.policy is ScalarPolicy.CONTROL


class TestAbstractProcessors:
    def test_declaration_and_numbering(self):
        ap = AbstractProcessors(32)
        pr = ap.declare(ProcessorArrangement(
            "PR", IndexDomain.standard(4, 8)))
        # column-major: (2,1) is unit 1, (1,2) is unit 4
        assert ap.ap_unit(pr, (1, 1)) == 0
        assert ap.ap_unit(pr, (2, 1)) == 1
        assert ap.ap_unit(pr, (1, 2)) == 4
        assert ap.ap_unit(pr, (4, 8)) == 31
        assert ap.index_of_unit(pr, 4) == (1, 2)

    def test_too_large_rejected(self):
        ap = AbstractProcessors(8)
        with pytest.raises(MappingError):
            ap.declare(ProcessorArrangement(
                "BIG", IndexDomain.standard(3, 3)))

    def test_origin_offset(self):
        ap = AbstractProcessors(16)
        q = ap.declare(ProcessorArrangement(
            "Q", IndexDomain.standard(4)), origin=8)
        assert ap.ap_unit(q, (1,)) == 8

    def test_duplicate_name_rejected(self):
        ap = AbstractProcessors(8)
        ap.declare(ProcessorArrangement("PR", IndexDomain.standard(4)))
        with pytest.raises(MappingError):
            ap.declare(ProcessorArrangement("PR", IndexDomain.standard(2)))

    def test_sharing_rule(self):
        # §3: same-origin arrangements share processors
        ap = AbstractProcessors(32)
        pr = ap.declare(ProcessorArrangement(
            "PR", IndexDomain.standard(32)))
        q = ap.declare(ProcessorArrangement(
            "Q", IndexDomain.standard(4, 4)))
        assert ap.share_processors(pr, q)
        assert len(ap.shared_units(pr, q)) == 16
        # PR(5) and Q(1,2) occupy the same abstract (hence physical) unit
        assert ap.ap_unit(pr, (5,)) == ap.ap_unit(q, (1, 2)) == 4

    def test_scalar_policies(self):
        ap = AbstractProcessors(8)
        ctrl = ap.declare(ScalarArrangement("CTRL"))
        assert ap.ap_unit(ctrl) == 0
        arb = ap.declare(ScalarArrangement(
            "ARB", policy=ScalarPolicy.ARBITRARY))
        assert ap.ap_units(arb) == (0,)
        rep = ap.declare(ScalarArrangement(
            "REP", policy=ScalarPolicy.REPLICATED))
        assert ap.ap_units(rep) == tuple(range(8))
        with pytest.raises(MappingError):
            ap.ap_unit(rep)

    def test_unknown_arrangement(self):
        ap = AbstractProcessors(8)
        with pytest.raises(MappingError):
            ap.arrangement("NOPE")


class TestProcessorSection:
    def setup_method(self):
        self.ap = AbstractProcessors(16)
        self.q = self.ap.declare(ProcessorArrangement(
            "Q", IndexDomain.standard(16)))

    def test_whole_arrangement(self):
        sec = ProcessorSection(self.q)
        assert sec.rank == 1 and sec.size == 16
        assert sec.ap_units_all(self.ap) == list(range(16))

    def test_strided_section(self):
        # the paper's TO Q(1:NOP:2) with NOP=8
        sec = ProcessorSection(self.q, (Triplet(1, 8, 2),))
        assert sec.size == 4
        assert sec.ap_units_all(self.ap) == [0, 2, 4, 6]
        assert sec.domain() == IndexDomain.standard(4)

    def test_scalar_subscript_section(self):
        sec = ProcessorSection(self.q, (5,))
        assert sec.rank == 0 and sec.size == 1
        assert sec.ap_units_all(self.ap) == [4]

    def test_empty_section_rejected(self):
        with pytest.raises(MappingError):
            ProcessorSection(self.q, (Triplet(5, 4),))

    def test_2d_section(self):
        ap = AbstractProcessors(16)
        pr = ap.declare(ProcessorArrangement(
            "PR", IndexDomain.standard(4, 4)))
        sec = ProcessorSection(pr, (Triplet(1, 3, 2), Triplet(2, 4, 2)))
        assert sec.shape == (2, 2)
        # (1,2)->4, (3,2)->6, (1,4)->12, (3,4)->14
        assert sec.ap_units_all(ap) == [4, 6, 12, 14]


class TestTopologies:
    def test_fully_connected(self):
        t = FullyConnected(8)
        assert t.hops(0, 0) == 0 and t.hops(0, 7) == 1
        assert t.diameter() == 1

    def test_line(self):
        t = Line(8)
        assert t.hops(0, 7) == 7 and t.diameter() == 7

    def test_mesh_xy_routing(self):
        t = Mesh2D(16, rows=4, cols=4)
        assert t.hops(0, 15) == 6      # (0,0) -> (3,3)
        assert t.hops(0, 1) == 1

    def test_mesh_auto_factorization(self):
        t = Mesh2D(12)
        assert t.rows * t.cols == 12

    def test_mesh_bad_shape(self):
        with pytest.raises(ValueError):
            Mesh2D(16, rows=3, cols=4)

    def test_hypercube(self):
        t = Hypercube(16)
        assert t.dimension == 4
        assert t.hops(0b0000, 0b1111) == 4
        assert t.hops(5, 5) == 0

    def test_hypercube_power_of_two(self):
        with pytest.raises(ValueError):
            Hypercube(12)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Line(4).hops(0, 4)
