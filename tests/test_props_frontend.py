"""Property-based front-end round trip: a random directive program
produces exactly the same mappings as the equivalent direct API calls."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataspace import DataSpace
from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.directives.analyzer import run_program
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic


@st.composite
def programs(draw):
    """A random 1-D program: N, NP, a distribution for A, an affine
    alignment for B, and optionally a REDISTRIBUTE."""
    np_ = draw(st.integers(2, 8))
    a_mult = draw(st.integers(1, 3))
    n = np_ * draw(st.integers(2, 10))
    b_extent = max(n // a_mult - 1, 1)
    offset = draw(st.integers(0, max(n - a_mult * b_extent, 0)))
    fmt = draw(st.sampled_from(["BLOCK", "CYCLIC", "CYCLIC(2)",
                                "CYCLIC(3)"]))
    refmt = draw(st.sampled_from([None, "BLOCK", "CYCLIC"]))
    return np_, n, b_extent, a_mult, offset, fmt, refmt


def _format_obj(text):
    if text == "BLOCK":
        return Block()
    if text == "CYCLIC":
        return Cyclic()
    return Cyclic(int(text[7:-1]))


@given(programs())
@settings(max_examples=60, deadline=None)
def test_directive_program_equals_api_calls(case):
    np_, n, b_extent, a_mult, offset, fmt, refmt = case
    redistribute = ""
    if refmt:
        redistribute = f"!HPF$ REDISTRIBUTE A({refmt}) TO PR\n"
    src = f"""
      REAL A({n}), B({b_extent})
!HPF$ PROCESSORS PR({np_})
!HPF$ DYNAMIC A
!HPF$ DISTRIBUTE A({fmt}) TO PR
!HPF$ ALIGN B(I) WITH A({a_mult}*I+{offset})
{redistribute}"""
    res = run_program(src, n_processors=np_)

    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n, dynamic=True)
    ds.declare("B", b_extent)
    ds.distribute("A", [_format_obj(fmt)], to="PR")
    ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                       [BaseExpr(a_mult * Dummy("I") + offset)]))
    if refmt:
        ds.redistribute("A", [_format_obj(refmt)], to="PR")

    for name in ("A", "B"):
        np.testing.assert_array_equal(res.ds.owner_map(name),
                                      ds.owner_map(name))
    assert res.ds.forest_snapshot() == ds.forest_snapshot()


def test_words_by_tag_attribution():
    """The ledger attributes traffic to the statements that caused it."""
    res = run_program("""
      REAL A(64), B(64)
!HPF$ PROCESSORS PR(8)
!HPF$ DISTRIBUTE A(BLOCK) TO PR
!HPF$ DISTRIBUTE B(CYCLIC) TO PR
      B = A
      A = B
""", n_processors=8, machine=True)
    tags = res.machine.words_by_tag()
    assert len(tags) == 2
    assert all(words > 0 for words in tags.values())
    assert sum(tags.values()) == res.machine.stats.total_words
    pair = res.machine.messages_between(0, 1)
    assert all(m.src == 0 and m.dst == 1 for m in pair)
