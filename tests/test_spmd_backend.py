"""Tests for the shared-memory SPMD execution backend.

The contract under test: the SPMD backend produces numerics
bit-identical to the sequential reference while leaving the machine in
exactly the state the simulated executor would — same words matrices,
same counters, same modeled time — because both charge the same
compiled counting schedules.  Both worker substrates (forked processes
over shared mmap buffers, threads over the canonical arrays) and both
ends of the worker-count range are covered, as are INDIRECT /
UserDefined distributions flowing through the schedule cache and epoch
invalidation on REDISTRIBUTE mid-session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.indirect import Indirect, UserDefined
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.engine.reference import execute_sequential
from repro.engine.spmd import SpmdExecutor
from repro.errors import MachineError
from repro.fortran.triplet import Triplet
from repro.machine.backend import Backend, BackendConfig, \
    make_executor, resolve_backend
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine
from repro.workloads.stencil import jacobi_case, staggered_grid_case

MODES = ("thread", "process")


def _jacobi(n=24, rows=2, cols=2, seed=7):
    case = jacobi_case(n, rows, cols)
    rng = np.random.default_rng(seed)
    case.ds.arrays["X"].data[:] = rng.uniform(-4.0, 4.0, size=(n, n))
    return case


def _copy_back(n):
    inner = Triplet(2, n - 1)
    return Assignment(ArrayRef("X", (inner, inner)),
                      ArrayRef("XNEW", (inner, inner)))


@pytest.mark.parametrize("mode", MODES)
def test_jacobi_iterations_match_reference_and_simulator(mode):
    n, iters = 24, 4
    case = _jacobi(n)
    case_sim = _jacobi(n)
    copy_back = _copy_back(n)
    machine = DistributedMachine(MachineConfig(4))
    machine_sim = DistributedMachine(MachineConfig(4))
    sim = SimulatedExecutor(case_sim.ds, machine_sim)
    with SpmdExecutor(case.ds, machine, mode=mode) as ex:
        assert ex.pool_mode == mode
        for _ in range(iters):
            spmd_rep = ex.execute(case.statement)
            sim_rep = sim.execute(case_sim.statement)
            np.testing.assert_array_equal(spmd_rep.words, sim_rep.words)
            assert spmd_rep.patterns == sim_rep.patterns
            ex.execute(copy_back)
            sim.execute(copy_back)
    for name in ("X", "XNEW"):
        np.testing.assert_array_equal(case.ds.arrays[name].data,
                                      case_sim.ds.arrays[name].data)
    np.testing.assert_array_equal(machine.stats.words_sent,
                                  machine_sim.stats.words_sent)
    np.testing.assert_array_equal(machine.stats.local_ops,
                                  machine_sim.stats.local_ops)
    assert machine.elapsed == machine_sim.elapsed
    assert machine.stats.pattern_words == machine_sim.stats.pattern_words
    # iterations 2..N were pure schedule-cache hits (two schedules per
    # statement shape: routing + counting)
    cache = case.ds.schedule_cache
    assert cache.misses == 4        # 2 statements x (routing + counting)
    assert cache.hits == 2 * iters * 2 - 4


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("n_workers", (1, 2, 3))
def test_fewer_workers_than_processors(mode, n_workers):
    n = 20
    case = _jacobi(n)
    ref = _jacobi(n)
    execute_sequential(ref.ds, ref.statement)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode=mode,
                      n_workers=n_workers) as ex:
        ex.execute(case.statement)
    np.testing.assert_array_equal(case.ds.arrays["XNEW"].data,
                                  ref.ds.arrays["XNEW"].data)


def test_worker_count_validated():
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    with pytest.raises(MachineError):
        SpmdExecutor(case.ds, machine, n_workers=0)
    with pytest.raises(MachineError):
        SpmdExecutor(case.ds, machine, n_workers=5)
    with pytest.raises(MachineError):
        SpmdExecutor(case.ds, machine, mode="carrier-pigeon").execute(
            case.statement)


def test_machine_width_validated():
    case = _jacobi(20)
    with pytest.raises(MachineError):
        SpmdExecutor(case.ds, DistributedMachine(MachineConfig(2)))


@pytest.mark.parametrize("mode", MODES)
def test_inplace_shift_respects_fortran_semantics(mode):
    """A(2:N) = A(1:N-1) reads across worker boundaries while every
    worker overwrites its own part of A: the gather/write barrier must
    keep the RHS values pre-assignment."""
    n, p = 32, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    ds.declare("A", n)
    ds.distribute("A", [Block()], to="PR")
    ds.arrays["A"].data[:] = np.arange(n, dtype=np.float64)
    ds_ref = DataSpace(p)
    ds_ref.processors("PR", p)
    ds_ref.declare("A", n)
    ds_ref.distribute("A", [Block()], to="PR")
    ds_ref.arrays["A"].data[:] = np.arange(n, dtype=np.float64)
    stmt = Assignment(ArrayRef("A", (Triplet(2, n),)),
                      ArrayRef("A", (Triplet(1, n - 1),)))
    execute_sequential(ds_ref, stmt)
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode=mode) as ex:
        ex.execute(stmt)
    np.testing.assert_array_equal(ds.arrays["A"].data,
                                  ds_ref.arrays["A"].data)


@pytest.mark.parametrize("mode", MODES)
def test_staggered_grid_spmd(mode):
    case = staggered_grid_case(16, 2, 2, "direct-block")
    ref = staggered_grid_case(16, 2, 2, "direct-block")
    rng = np.random.default_rng(3)
    for name in ("U", "V"):
        values = rng.uniform(-2.0, 2.0,
                             size=case.ds.arrays[name].data.shape)
        case.ds.arrays[name].data[:] = values
        ref.ds.arrays[name].data[:] = values
    execute_sequential(ref.ds, ref.statement)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode=mode) as ex:
        ex.execute(case.statement)
    np.testing.assert_array_equal(case.ds.arrays["P"].data,
                                  ref.ds.arrays["P"].data)


def test_spmd_with_overlap_charging_matches_simulator():
    case = _jacobi(24)
    case_sim = _jacobi(24)
    machine = DistributedMachine(MachineConfig(4))
    machine_sim = DistributedMachine(MachineConfig(4))
    sim = SimulatedExecutor(case_sim.ds, machine_sim, use_overlap=True)
    with SpmdExecutor(case.ds, machine, mode="thread",
                      use_overlap=True) as ex:
        spmd_rep = ex.execute(case.statement)
    sim_rep = sim.execute(case_sim.statement)
    assert spmd_rep.strategies["*"] == "overlap"
    np.testing.assert_array_equal(spmd_rep.words, sim_rep.words)
    assert machine.elapsed == machine_sim.elapsed
    np.testing.assert_array_equal(case.ds.arrays["XNEW"].data,
                                  case_sim.ds.arrays["XNEW"].data)


@pytest.mark.parametrize("mode", MODES)
def test_indirect_and_user_defined_through_cache_and_spmd(mode):
    """INDIRECT / UserDefined layouts flow through the schedule cache
    and the SPMD workers: compile once, execute repeatedly as cache
    hits, REDISTRIBUTE invalidates by epoch, numerics stay equal to the
    sequential reference throughout."""
    n, p = 24, 4
    mapping = [(3 * i + 1) % p for i in range(n)]

    def build():
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("A", n, dynamic=True)
        ds.declare("B", n)
        ds.distribute("A", [Indirect(mapping)], to="PR")
        ds.distribute("B", [UserDefined(lambda i: (i * 7) % p,
                                        name="hash")], to="PR")
        rng = np.random.default_rng(11)
        ds.arrays["A"].data[:] = rng.uniform(-1.0, 1.0, size=n)
        ds.arrays["B"].data[:] = rng.uniform(-1.0, 1.0, size=n)
        return ds

    stmt = Assignment(ArrayRef("A", (Triplet(1, n),)),
                      ArrayRef("B", (Triplet(1, n),)) * 2.0 + 1.0)
    ds = build()
    ds_ref = build()
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode=mode) as ex:
        ex.execute(stmt)
        misses_cold = ds.schedule_cache.misses
        assert misses_cold == 2             # routing + counting compile
        ex.execute(stmt)
        assert ds.schedule_cache.misses == misses_cold
        assert ds.schedule_cache.hits == 2  # both schedules re-used
        execute_sequential(ds_ref, stmt)
        execute_sequential(ds_ref, stmt)
        np.testing.assert_array_equal(ds.arrays["A"].data,
                                      ds_ref.arrays["A"].data)

        # REDISTRIBUTE bumps the layout epoch: every schedule (and the
        # executor's compiled task splits) must be recompiled
        epoch = ds.layout_epoch
        ds.redistribute("A", [Cyclic()], to="PR")
        assert ds.layout_epoch > epoch
        assert ds.schedule_cache.invalidations >= 1
        assert len(ds.schedule_cache) == 0
        ex.execute(stmt)
        assert ds.schedule_cache.misses == misses_cold + 2
        ds_ref.redistribute("A", [Cyclic()], to="PR")
        execute_sequential(ds_ref, stmt)
        np.testing.assert_array_equal(ds.arrays["A"].data,
                                      ds_ref.arrays["A"].data)


@pytest.mark.parametrize("mode", MODES)
def test_replicated_operand(mode):
    n, p = 16, 4
    from repro.distributions.replicated import ReplicatedFormat

    def build():
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("L", n)
        ds.declare("R", n)
        ds.distribute("L", [Block()], to="PR")
        ds.distribute("R", [ReplicatedFormat()], to="PR")
        rng = np.random.default_rng(5)
        ds.arrays["R"].data[:] = rng.uniform(-3.0, 3.0, size=n)
        return ds

    stmt = Assignment(ArrayRef("L", (Triplet(1, n),)),
                      ArrayRef("R", (Triplet(1, n),)))
    ds, ds_sim = build(), build()
    machine = DistributedMachine(MachineConfig(p))
    machine_sim = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode=mode) as ex:
        rep = ex.execute(stmt)
    sim_rep = SimulatedExecutor(ds_sim, machine_sim).execute(stmt)
    # even for replicated operands (where the payload router diverges
    # from the counting oracle) the SPMD report matches the simulator
    np.testing.assert_array_equal(rep.words, sim_rep.words)
    np.testing.assert_array_equal(ds.arrays["L"].data,
                                  ds_sim.arrays["L"].data)


def test_process_mode_restarts_for_arrays_created_mid_session():
    """ALLOCATE-style programs: an array created after the workers
    forked transparently restarts the pool (the §6 allocatable pattern
    must work under ``--backend spmd`` exactly like under simulate)."""
    n, p = 20, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    ds.declare("A", n)
    ds.distribute("A", [Block()], to="PR")
    ds.arrays["A"].data[:] = np.arange(n, dtype=np.float64)
    shift = Assignment(ArrayRef("A", (Triplet(2, n),)),
                       ArrayRef("A", (Triplet(1, n - 1),)))
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode="process") as ex:
        ex.execute(shift)
        ds.declare("Z", n)
        ds.distribute("Z", [Block()], to="PR")
        ds.arrays["Z"].data[:] = 3.0
        stmt = Assignment(ArrayRef("Z", (Triplet(2, n),)),
                          ArrayRef("A", (Triplet(1, n - 1),))
                          + ArrayRef("Z", (Triplet(1, n - 1),)))
        ex.execute(stmt)          # restarts the pool, no error
        ex.execute(stmt)          # steady state on the new pool
    ds_ref = DataSpace(p)
    ds_ref.processors("PR", p)
    for name in ("A", "Z"):
        ds_ref.declare(name, n)
        ds_ref.distribute(name, [Block()], to="PR")
    ds_ref.arrays["A"].data[:] = np.arange(n, dtype=np.float64)
    ds_ref.arrays["Z"].data[:] = 3.0
    execute_sequential(ds_ref, shift)
    execute_sequential(ds_ref, stmt)
    execute_sequential(ds_ref, stmt)
    for name in ("A", "Z"):
        np.testing.assert_array_equal(ds.arrays[name].data,
                                      ds_ref.arrays[name].data)


def test_run_program_spmd_with_allocate():
    """End to end through the directive front end: a program that
    ALLOCATEs between assignments runs under the SPMD backend and
    matches the simulated backend."""
    from repro.directives.analyzer import run_program
    source = """
      REAL A(1:N)
      REAL, ALLOCATABLE :: B(:)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE (BLOCK) TO PR :: A
!HPF$ DISTRIBUTE (BLOCK) TO PR :: B
      A(2:N) = A(1:N-1)
      ALLOCATE (B(1:N))
      B(2:N) = A(1:N-1)
"""
    kwargs = dict(n_processors=4, inputs={"N": 24}, machine=True)
    sim = run_program(source, backend="simulate", **kwargs)
    spmd = run_program(source, backend="spmd", **kwargs)
    for name in ("A", "B"):
        np.testing.assert_array_equal(spmd.ds.arrays[name].data,
                                      sim.ds.arrays[name].data)


@pytest.mark.parametrize("mode", MODES)
def test_task_split_cache_is_bounded(mode, monkeypatch):
    """The per-executor task-split table is LRU-bounded; evicted splits
    are dropped from the workers too and re-ship correctly when the
    statement comes back."""
    from repro.engine import spmd as spmd_mod
    monkeypatch.setattr(spmd_mod, "_TASK_CACHE_MAX", 2)
    n, p = 16, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Cyclic()], to="PR")
    ds.arrays["B"].data[:] = np.arange(n, dtype=np.float64)
    stmts = [Assignment(ArrayRef("A", (Triplet(1, n - k),)),
                        ArrayRef("B", (Triplet(1 + k, n),)))
             for k in range(3)]
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode=mode) as ex:
        for stmt in stmts:          # third compile evicts the first
            ex.execute(stmt)
        assert len(ex._tasks) == 2
        ex.execute(stmts[0])        # evicted split re-ships
        assert len(ex._tasks) == 2
    ds_ref = DataSpace(p)
    ds_ref.processors("PR", p)
    ds_ref.declare("A", n)
    ds_ref.declare("B", n)
    ds_ref.distribute("A", [Block()], to="PR")
    ds_ref.distribute("B", [Cyclic()], to="PR")
    ds_ref.arrays["B"].data[:] = np.arange(n, dtype=np.float64)
    for stmt in stmts + [stmts[0]]:
        execute_sequential(ds_ref, stmt)
    np.testing.assert_array_equal(ds.arrays["A"].data,
                                  ds_ref.arrays["A"].data)


def test_killed_worker_surfaces_machine_error_and_restarts():
    """A worker killed externally (OOM and friends) must surface as the
    documented MachineError with the close-and-retry recovery, never a
    raw pipe error, and must mark the pool broken."""
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    ex = SpmdExecutor(case.ds, machine, mode="process")
    ex.execute(case.statement)
    pool = ex._pool
    pool._procs[0].terminate()
    pool._procs[0].join(timeout=5.0)
    with pytest.raises(MachineError):
        ex.execute(case.statement)
    assert pool.broken
    with pytest.raises(MachineError, match="broken"):
        ex.execute(case.statement)
    ex.close()
    ex.execute(case.statement)   # fresh pool works
    ex.close()


def test_worker_error_breaks_pool_and_close_restarts():
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    ex = SpmdExecutor(case.ds, machine, mode="thread")
    pool = ex._ensure_pool()
    # dispatch a serial the workers never received: every worker
    # reports the error and the pool is marked broken
    with pytest.raises(MachineError, match="SPMD statement failed"):
        pool.run_statement(999, None)
    with pytest.raises(MachineError, match="broken"):
        ex.execute(case.statement)
    # close + execute restarts a fresh pool
    ex.close()
    ref = _jacobi(20)
    execute_sequential(ref.ds, ref.statement)
    ex.execute(case.statement)
    ex.close()
    np.testing.assert_array_equal(case.ds.arrays["XNEW"].data,
                                  ref.ds.arrays["XNEW"].data)


def test_refresh_reuploads_external_mutation():
    n = 20
    case = _jacobi(n)
    ref = _jacobi(n)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode="process") as ex:
        ex.execute(case.statement)
        # mutate the canonical array behind the session's back, then
        # tell the executor to re-upload before the next statement
        case.ds.arrays["X"].data[:] *= 2.0
        ref.ds.arrays["X"].data[:] *= 2.0
        ex.refresh()   # no names: re-upload every mirrored array
        ex.execute(case.statement)
    execute_sequential(ref.ds, ref.statement)
    execute_sequential(ref.ds, ref.statement)
    np.testing.assert_array_equal(case.ds.arrays["XNEW"].data,
                                  ref.ds.arrays["XNEW"].data)


# ----------------------------------------------------------------------
# Backend selection layer
# ----------------------------------------------------------------------
def test_resolve_backend_coercions():
    import warnings as _warnings
    with _warnings.catch_warnings():
        _warnings.simplefilter("error", DeprecationWarning)
        # None and explicit configs resolve silently
        assert resolve_backend(None).kind == "simulate"
        config = BackendConfig(kind="spmd", n_workers=2, mode="thread")
        assert resolve_backend(config) is config
    # bare kind strings still work, but only through the shim warning
    with pytest.warns(DeprecationWarning, match="Backend.spmd"):
        assert resolve_backend("spmd").kind == "spmd"
    with pytest.warns(DeprecationWarning):
        with pytest.raises(MachineError):
            resolve_backend("quantum")
    with pytest.raises(MachineError):
        resolve_backend(42)


def test_backend_spec_constructors():
    sim = Backend.simulate()
    assert sim.kind == "simulate" and not sim.use_overlap
    spec = Backend.spmd(workers=2, mode="fork", fused=False)
    assert spec.kind == "spmd"
    assert spec.n_workers == 2
    assert spec.mode == "process"      # 'fork' is an alias
    assert spec.fused is False
    assert Backend.spmd().fused is True
    with pytest.raises(TypeError):
        Backend()                      # namespace, not a class to build
    with pytest.raises(MachineError):
        Backend.spmd(mode="carrier-pigeon")


def test_session_loose_kwargs_deprecated_but_folded():
    from repro import Session
    with pytest.warns(DeprecationWarning, match="Backend.spmd"):
        s = Session(4, backend=Backend.spmd(), n_workers=2,
                    mode="thread")
    assert s.backend.kind == "spmd"
    assert s.backend.n_workers == 2
    assert s.backend.mode == "thread"
    s.close()


def test_report_timing_fields():
    from repro.engine.distexec import MessageAccurateExecutor
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    rep = SimulatedExecutor(case.ds, machine).execute(case.statement)
    assert rep.wall_s > 0.0
    assert rep.barrier_count == 0
    assert set(rep.per_phase_wall) == {"numerics", "charge"}

    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    rep = MessageAccurateExecutor(case.ds, machine).execute(
        case.statement)
    assert rep.wall_s > 0.0
    assert set(rep.per_phase_wall) == {"route", "write"}

    for fused, barriers in ((True, 1), (False, 2)):
        case = _jacobi(20)
        machine = DistributedMachine(MachineConfig(4))
        with SpmdExecutor(case.ds, machine, mode="thread",
                          fused=fused) as ex:
            rep = ex.execute(case.statement)
        assert rep.wall_s > 0.0
        assert rep.barrier_count == barriers
        assert set(rep.per_phase_wall) == {"gather", "write"}


# ----------------------------------------------------------------------
# Fused per-peer transfer plans
# ----------------------------------------------------------------------
def _window_tasks(ex):
    """Every compiled WindowTask list sitting in the executor's plan
    cache (one list per fusion window, one task per worker)."""
    return [entry[1] for key, entry in ex._tasks.items()
            if isinstance(key, tuple) and key and key[0] == "w"]


def test_fused_matches_unfused_with_fewer_barriers():
    n, iters = 24, 3
    case, case_uf = _jacobi(n), _jacobi(n)
    copy_back = _copy_back(n)
    stmts = [case.statement, copy_back]
    machine = DistributedMachine(MachineConfig(4))
    machine_uf = DistributedMachine(MachineConfig(4))
    barriers = barriers_uf = 0
    with SpmdExecutor(case.ds, machine, mode="thread") as ex, \
            SpmdExecutor(case_uf.ds, machine_uf, mode="thread",
                         fused=False) as ex_uf:
        for _ in range(iters):
            barriers += sum(r.barrier_count
                            for r in ex.execute_all(stmts))
            barriers_uf += sum(r.barrier_count
                               for r in ex_uf.execute_all(stmts))
    for name in ("X", "XNEW"):
        np.testing.assert_array_equal(case.ds.arrays[name].data,
                                      case_uf.ds.arrays[name].data)
    np.testing.assert_array_equal(machine.stats.words_sent,
                                  machine_uf.stats.words_sent)
    assert machine.elapsed == machine_uf.elapsed
    # copy_back reads what the stencil wrote: 2 windows/sweep fused
    # (1 barrier each) vs 2 statements x 2 barriers unfused
    assert barriers == 2 * iters
    assert barriers_uf == 4 * iters


def test_independent_statements_share_one_window_barrier():
    n, p = 16, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    for name in ("A", "B", "C", "D"):
        ds.declare(name, n)
        ds.distribute(name, [Block()], to="PR")
    rng = np.random.default_rng(2)
    ds.arrays["B"].data[:] = rng.uniform(-1, 1, n)
    ds.arrays["D"].data[:] = rng.uniform(-1, 1, n)
    whole = (Triplet(1, n),)
    independent = [Assignment(ArrayRef("A", whole),
                              ArrayRef("B", whole) * 2.0),
                   Assignment(ArrayRef("C", whole),
                              ArrayRef("D", whole) + 1.0)]
    dependent = [Assignment(ArrayRef("A", whole),
                            ArrayRef("B", whole) * 2.0),
                 Assignment(ArrayRef("C", whole),
                            ArrayRef("A", whole) + 1.0)]
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode="thread") as ex:
        reps = ex.execute_all(independent)
        assert sum(r.barrier_count for r in reps) == 1
        reps = ex.execute_all(dependent)
        assert sum(r.barrier_count for r in reps) == 2   # RAW break
    np.testing.assert_array_equal(
        ds.arrays["C"].data, ds.arrays["B"].data * 2.0 + 1.0)


def test_golden_zero_copy_faces_and_staged_gathers():
    """Jacobi 5-point on a 2x2 grid compiles both transfer shapes:
    column faces are one ascending stride-1 run of Fortran-order
    storage (zero-copy ``(lo, hi)`` windows, no gather index), row
    faces are strided (staged ndarray gathers)."""
    case = _jacobi(16)
    ref = _jacobi(16)
    execute_sequential(ref.ds, ref.statement)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode="thread") as ex:
        ex.execute(case.statement)
        windows = _window_tasks(ex)
        assert len(windows) == 1
        pulls = [pull for tasks in windows for task in tasks
                 for tr in task.transfers for pull in tr.pulls]
        zero_copy = [pl for pl in pulls if pl.index is None]
        staged = [pl for pl in pulls if pl.index is not None]
        assert zero_copy and staged
        for pl in zero_copy:
            assert pl.hi > pl.lo
    np.testing.assert_array_equal(case.ds.arrays["XNEW"].data,
                                  ref.ds.arrays["XNEW"].data)


def test_golden_aligned_copy_is_pure_view():
    """A = B with identical BLOCK layouts needs no transfer at all:
    every worker's single operand becomes a zero-copy view into B's
    shared segment and the write collapses to one contiguous slice."""
    n, p = 32, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    for name in ("A", "B"):
        ds.declare(name, n)
        ds.distribute(name, [Block()], to="PR")
    ds.arrays["B"].data[:] = np.arange(n, dtype=np.float64)
    stmt = Assignment(ArrayRef("A", (Triplet(1, n),)),
                      ArrayRef("B", (Triplet(1, n),)))
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode="thread") as ex:
        ex.execute(stmt)
        (tasks,) = _window_tasks(ex)
        for task in tasks:
            assert task.transfers == ()
            assert all(op.view is not None for op in task.ops)
            assert all(sp.write_index is None and sp.hi > sp.lo
                       for sp in task.stmts)
    np.testing.assert_array_equal(ds.arrays["A"].data,
                                  ds.arrays["B"].data)


def test_golden_cyclic_gather_is_staged():
    """A(BLOCK) = B(CYCLIC): the stride-p positions can never collapse
    to a contiguous window, so every remote pull stages through a
    concatenated gather index."""
    n, p = 32, 4
    ds = DataSpace(p)
    ds.processors("PR", p)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Cyclic()], to="PR")
    ds.arrays["B"].data[:] = np.arange(n, dtype=np.float64)
    stmt = Assignment(ArrayRef("A", (Triplet(1, n),)),
                      ArrayRef("B", (Triplet(1, n),)))
    machine = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds, machine, mode="thread") as ex:
        ex.execute(stmt)
        (tasks,) = _window_tasks(ex)
        remote = [pull for task_i, task in enumerate(tasks)
                  for tr in task.transfers if tr.src_worker != task_i
                  for pull in tr.pulls]
        assert remote
        assert all(pull.index is not None for pull in remote)
    np.testing.assert_array_equal(ds.arrays["A"].data,
                                  ds.arrays["B"].data)


def test_make_executor_dispatch():
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    assert isinstance(make_executor(case.ds, machine), SimulatedExecutor)
    ex = make_executor(case.ds, machine,
                       BackendConfig(kind="spmd", mode="thread"))
    assert isinstance(ex, SpmdExecutor)
    ex.close()


def test_run_program_spmd_backend():
    from repro.directives.analyzer import run_program
    source = """
      REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)
!HPF$ PROCESSORS PR(2,2)
!HPF$ DISTRIBUTE (BLOCK,BLOCK) TO PR :: U, V, P
      P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)
"""
    kwargs = dict(n_processors=4, inputs={"N": 12}, machine=True)
    sim = run_program(source, backend="simulate", **kwargs)
    spmd = run_program(source, backend="spmd", **kwargs)
    np.testing.assert_array_equal(spmd.ds.arrays["P"].data,
                                  sim.ds.arrays["P"].data)
    np.testing.assert_array_equal(spmd.reports[-1].words,
                                  sim.reports[-1].words)
    assert spmd.machine.elapsed == sim.machine.elapsed


def test_cli_run_subcommand(tmp_path, capsys):
    from repro.cli import main
    program = tmp_path / "prog.f"
    program.write_text("""
      REAL A(1:N), B(1:N)
!HPF$ PROCESSORS PR(4)
!HPF$ DISTRIBUTE (BLOCK) TO PR :: A, B
      A(2:N) = B(1:N-1)
""")
    assert main(["run", str(program), "--backend", "spmd",
                 "-p", "4", "-D", "N=32"]) == 0
    out_spmd = capsys.readouterr().out
    assert main(["run", str(program), "--backend", "simulate",
                 "-p", "4", "-D", "N=32"]) == 0
    out_sim = capsys.readouterr().out
    assert "backend=spmd" in out_spmd
    # identical accounting lines, backend label aside
    assert out_spmd.splitlines()[1:] == out_sim.splitlines()[1:]


def test_cli_bench_diff(tmp_path, capsys):
    import json

    from repro.cli import main
    base = [{"name": "jacobi_spmd_p2", "size": 1, "seconds": 0.1,
             "words_moved": 5, "cache_hit_rate": 0.8},
            {"name": "untracked", "size": 1, "seconds": 0.1,
             "words_moved": 5}]
    good = [dict(base[0], cache_hit_rate=0.85), base[1]]
    bad = [dict(base[0], cache_hit_rate=0.5), base[1]]
    for name, rows in (("base", base), ("good", good), ("bad", bad)):
        (tmp_path / f"{name}.json").write_text(json.dumps(rows))
    assert main(["bench-diff", str(tmp_path / "base.json"),
                 str(tmp_path / "good.json")]) == 0
    capsys.readouterr()
    assert main(["bench-diff", str(tmp_path / "base.json"),
                 str(tmp_path / "bad.json")]) == 1
    assert "regressed" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Worker-resident loop replay
# ----------------------------------------------------------------------
def _loop_serials(ex):
    """The replay serials of every compiled fusion window in the
    executor's plan cache, in compilation (= program) order."""
    return sorted(entry[0] for key, entry in ex._tasks.items()
                  if isinstance(key, tuple) and key and key[0] == "w")


@pytest.mark.parametrize("mode", MODES)
def test_execute_loop_matches_dispatch_bit_identically(mode):
    """Replaying N trips worker-side produces the same reports, the
    same numerics and the same machine state as N coordinator-dispatched
    sweeps — run-ahead is invisible to the accounting seam."""
    n, trips = 24, 4
    case = _jacobi(n)
    ref = _jacobi(n)
    stmts = [case.statement, _copy_back(n)]
    ref_stmts = [ref.statement, _copy_back(n)]
    machine = DistributedMachine(MachineConfig(4))
    machine_ref = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode=mode) as ex:
        reports = ex.execute_loop(stmts, trips)
        assert ex.replay_count == 1
        assert ex.dispatch_count == 0
    with SpmdExecutor(ref.ds, machine_ref, mode=mode) as rex:
        ref_reports = []
        for _ in range(trips):
            ref_reports.extend(rex.execute_all(ref_stmts))
        assert rex.dispatch_count == 2 * trips
        assert rex.replay_count == 0
    assert len(reports) == len(ref_reports) == 2 * trips
    for rep, ref_rep in zip(reports, ref_reports):
        np.testing.assert_array_equal(rep.words, ref_rep.words)
        assert rep.patterns == ref_rep.patterns
        assert rep.total_words == ref_rep.total_words
    for name in ("X", "XNEW"):
        np.testing.assert_array_equal(case.ds.arrays[name].data,
                                      ref.ds.arrays[name].data)
    np.testing.assert_array_equal(machine.stats.words_sent,
                                  machine_ref.stats.words_sent)
    np.testing.assert_array_equal(machine.stats.msgs_sent,
                                  machine_ref.stats.msgs_sent)
    assert machine.elapsed == machine_ref.elapsed
    assert machine.stats.pattern_words == machine_ref.stats.pattern_words
    # replay crosses its barrier twice per window per trip (phase +
    # post-write); dispatch crosses once per window, the coordinator ack
    # round providing write visibility instead
    assert sum(r.barrier_count for r in reports) == 4 * trips
    assert sum(r.barrier_count for r in ref_reports) == 2 * trips


def test_execute_loop_replay_off_falls_back_to_dispatch():
    n, trips = 20, 3
    case = _jacobi(n)
    ref = _jacobi(n)
    copy_back = _copy_back(n)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode="thread",
                      replay=False) as ex:
        assert ex.replay is False
        reports = ex.execute_loop([case.statement, copy_back], trips)
        assert ex.replay_count == 0
        assert ex.dispatch_count == 2 * trips
    assert len(reports) == 2 * trips
    for _ in range(trips):
        execute_sequential(ref.ds, ref.statement)
        execute_sequential(ref.ds, copy_back)
    np.testing.assert_array_equal(case.ds.arrays["X"].data,
                                  ref.ds.arrays["X"].data)


def test_execute_loop_degenerate_inputs():
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    with SpmdExecutor(case.ds, machine, mode="thread") as ex:
        assert ex.execute_loop([], 5) == []
        assert ex.execute_loop([case.statement], 0) == []
        assert ex.replay_count == 0 and ex.dispatch_count == 0


def test_sense_barrier_timeout_sets_sticky_abort():
    from repro.engine import spmd as spmd_mod
    from repro.engine.spmd import SenseBarrier
    slots = np.zeros(SenseBarrier.n_slots(2), dtype=np.int64)
    b = SenseBarrier(slots, 0, 2)
    with pytest.raises(MachineError, match="timed out"):
        b.wait(0.2)
    # the timed-out waiter flips the sticky abort flag for its peers
    assert slots[2 * spmd_mod._SENSE_STRIDE] == 1


def test_sense_barrier_peer_abort_raises_peer_failed():
    from repro.engine import spmd as spmd_mod
    from repro.engine.spmd import SenseBarrier, _PeerAbortError
    slots = np.zeros(SenseBarrier.n_slots(2), dtype=np.int64)
    slots[2 * spmd_mod._SENSE_STRIDE] = 1          # a peer aborted
    b = SenseBarrier(slots, 0, 2)
    # _PeerAbortError is a MachineError carrying the relay message
    with pytest.raises(_PeerAbortError, match="peer failed"):
        b.wait(5.0)
    assert issubclass(_PeerAbortError, MachineError)


def test_sense_barrier_crossings_stay_in_lockstep():
    import threading

    from repro.engine import spmd as spmd_mod
    from repro.engine.spmd import SenseBarrier
    crossings = 50
    slots = np.zeros(SenseBarrier.n_slots(2), dtype=np.int64)
    errors = []

    def run(rank):
        b = SenseBarrier(slots, rank, 2)
        try:
            for _ in range(crossings):
                b.wait(10.0)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(r,)) for r in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
    assert not errors
    # generations are monotonic and never reset
    assert slots[0] == slots[spmd_mod._SENSE_STRIDE] == crossings
    assert slots[2 * spmd_mod._SENSE_STRIDE] == 0


def test_thread_peer_barrier_break_reports_peer_failed():
    """A worker whose peer aborts the phase barrier must relay the
    documented 'peer failed' message, not a raw BrokenBarrierError
    traceback (the real cause follows on the failing peer's pipe)."""
    case = _jacobi(20)
    machine = DistributedMachine(MachineConfig(4))
    ex = SpmdExecutor(case.ds, machine, mode="thread", n_workers=2)
    try:
        ex.execute(case.statement)          # caches the window split
        (serial,) = _loop_serials(ex)
        pool = ex._pool
        # worker 0 runs the cached window and parks at the phase
        # barrier; worker 1 hits an unknown serial, errors, and aborts
        # the barrier under worker 0
        pool._endpoints[0].send(("exec", serial, None))
        pool._endpoints[1].send(("exec", 999, None))
        status0, detail0, _ = pool._recv(0, pool._endpoints[0])
        status1, detail1, _ = pool._recv(1, pool._endpoints[1])
        assert status0 == "err" and status1 == "err"
        assert "peer failed" in detail0
        assert "its own error follows on its pipe" in detail0
        assert "BrokenBarrierError" not in detail0
        assert "no cached task 999" in detail1
    finally:
        ex.close()


def test_replay_wedge_detection_releases_survivors(monkeypatch):
    """If a peer never reaches the replay barrier, survivors must time
    out via the SenseBarrier (not hang), report the wedge, and return
    to their service loop so the pool can be torn down cleanly."""
    from repro.engine import spmd as spmd_mod
    # patch BEFORE the pool forks: children inherit the module state
    monkeypatch.setattr(spmd_mod, "_BARRIER_TIMEOUT", 3.0)
    n = 20
    case = _jacobi(n)
    stmts = [case.statement, _copy_back(n)]
    machine = DistributedMachine(MachineConfig(4))
    ex = SpmdExecutor(case.ds, machine, mode="process")
    try:
        ex.execute_loop(stmts, 1)           # forks pool, ships plans
        serials = _loop_serials(ex)
        pool = ex._pool
        # start a replay on workers 0..2 only: worker 3 never arrives
        # at the SenseBarrier, so the survivors wedge
        for endpoint in pool._endpoints[:-1]:
            endpoint.send(("loop", 777, tuple(serials), 2))
        details = []
        for w in range(3):
            status, detail, _ = pool._recv(w, pool._endpoints[w])
            assert status == "err"
            details.append(detail)
        # the first waiter past the deadline reports the timeout and
        # aborts; the rest are released into the peer-failed relay
        assert all(("timed out" in d) or ("peer failed" in d)
                   for d in details)
        assert any("timed out" in d for d in details)
        # every worker is back in its service loop: a plain stop
        # suffices, no terminate needed
        for endpoint in pool._endpoints:
            endpoint.send(("stop",))
        for proc in pool._procs:
            proc.join(timeout=30.0)
            assert not proc.is_alive()
    finally:
        ex.close()


def test_replay_dead_worker_surfaces_machine_error():
    case = _jacobi(20)
    stmts = [case.statement, _copy_back(20)]
    machine = DistributedMachine(MachineConfig(4))
    ex = SpmdExecutor(case.ds, machine, mode="process")
    try:
        ex.execute_loop(stmts, 1)
        pool = ex._pool
        pool._procs[0].terminate()
        pool._procs[0].join(timeout=5.0)
        with pytest.raises(MachineError):
            ex.execute_loop(stmts, 3)
        assert pool.broken
        with pytest.raises(MachineError, match="broken"):
            ex.execute_loop(stmts, 1)
    finally:
        ex.close()
    # close + execute restarts a fresh pool
    ex.execute_loop(stmts, 1)
    ex.close()


def test_bench_diff_replay_gates():
    from repro.bench.diff import _dormant_gates, diff_speedups

    def replay_row(**kw):
        row = {"speedup_vs_simulate": 3.0, "fused": True, "replay": True,
               "multicore": True, "seconds": 0.04, "workers": 4}
        row.update(kw)
        return row

    base = {
        "jacobi_spmd_p4_s50000": {"speedup_vs_simulate": 2.5,
                                  "fused": True, "multicore": True,
                                  "seconds": 0.10, "workers": 4},
        "jacobi_spmd_replay_p4_s50000": replay_row(),
    }
    good = {"jacobi_spmd_p4_s50000": dict(base["jacobi_spmd_p4_s50000"]),
            "jacobi_spmd_replay_p4_s50000": replay_row(seconds=0.03)}
    assert diff_speedups(base, good) == []

    # a multicore replay row below the absolute 1x target fails
    slow = dict(good)
    slow["jacobi_spmd_replay_p4_s50000"] = replay_row(
        speedup_vs_simulate=0.8)
    assert any("below the 1.0x target" in p
               for p in diff_speedups(base, slow))

    # a replay row that no longer beats the baseline *dispatch* row by
    # the wall factor fails even with a healthy speedup_vs_simulate
    lazy = dict(good)
    lazy["jacobi_spmd_replay_p4_s50000"] = replay_row(seconds=0.08)
    assert any("faster than the baseline dispatch row" in p
               for p in diff_speedups(base, lazy))

    # single-core runs arm nothing but are reported as dormant
    cold = {"jacobi_spmd_replay_p4_s50000": replay_row(
        speedup_vs_simulate=0.3, multicore=False, cpu_count=1)}
    assert diff_speedups({}, cold) == []
    dormant = _dormant_gates(cold)
    assert len(dormant) == 1
    assert "replay speedup" in dormant[0] and "dormant" in dormant[0]
