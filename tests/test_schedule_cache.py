"""Schedule-cache correctness: hits on repeats, invalidation on remaps,
bulk ownership kernels against their scalar oracles, and batched message
deposits against per-message sends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.align.ast import Dummy
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.distributions.indirect import Indirect
from repro.distributions.replicated import ReplicatedFormat
from repro.engine.assignment import Assignment
from repro.engine.commsets import comm_matrix
from repro.engine.distexec import MessageAccurateExecutor
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.engine.schedule import schedule_for
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


def _pair(n: int = 64, np_: int = 8) -> DataSpace:
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Cyclic(3)], to="PR")
    return ds


def _stmt(n: int = 64) -> Assignment:
    return Assignment(ArrayRef("A", (Triplet(2, n),)),
                      ArrayRef("B", (Triplet(1, n - 1),)))


class TestCacheHits:
    def test_repeated_identical_statement_is_a_hit(self):
        ds = _pair()
        s1 = schedule_for(ds, _stmt(), 8)
        # a structurally equal but distinct statement object hits too
        s2 = schedule_for(ds, _stmt(), 8)
        assert s1 is s2
        assert ds.schedule_cache.hits == 1
        assert ds.schedule_cache.misses == 1

    def test_distinct_statements_compile_separately(self):
        ds = _pair()
        schedule_for(ds, _stmt(), 8)
        other = Assignment(ArrayRef("A"), ArrayRef("B"))
        schedule_for(ds, other, 8)
        assert ds.schedule_cache.misses == 2

    def test_strategy_and_overlap_are_part_of_the_key(self):
        ds = _pair()
        a = schedule_for(ds, _stmt(), 8, strategy="oracle")
        b = schedule_for(ds, _stmt(), 8, strategy="auto")
        assert a is not b
        np.testing.assert_array_equal(a.refs[0].words, b.refs[0].words)

    def test_executor_reuses_schedule_across_iterations(self):
        ds = _pair()
        machine = DistributedMachine(MachineConfig(8))
        ex = SimulatedExecutor(ds, machine)
        reports = [ex.execute(_stmt()) for _ in range(4)]
        assert ds.schedule_cache.misses == 1
        assert ds.schedule_cache.hits == 3
        for r in reports[1:]:
            np.testing.assert_array_equal(r.words, reports[0].words)

    def test_schedule_matrices_match_direct_oracle(self):
        ds = _pair()
        stmt = _stmt()
        sched = schedule_for(ds, stmt, 8, strategy="oracle")
        m, local, off = comm_matrix(
            ds.distribution_of("A"), stmt.lhs.section(ds),
            ds.distribution_of("B"), stmt.rhs.section(ds), 8)
        rs = sched.refs[0]
        np.testing.assert_array_equal(rs.words, m)
        assert (rs.local, rs.off) == (local, off)

    def test_analytic_equals_oracle_through_the_cache(self):
        ds = _pair()
        a = schedule_for(ds, _stmt(), 8, strategy="analytic")
        b = schedule_for(ds, _stmt(), 8, strategy="oracle")
        np.testing.assert_array_equal(a.refs[0].words, b.refs[0].words)
        assert a.refs[0].strategy == "analytic"
        assert b.refs[0].strategy == "oracle"


class TestIndirectSchedules:
    """INDIRECT / UserDefined layouts through the compiled-schedule
    subsystem: the cache memoizes their schedules like any format
    distribution, the matrices agree with the oracle, and REDISTRIBUTE
    away from (and back onto) an explicit mapping invalidates."""

    def _indirect_pair(self, n: int = 48, p: int = 6) -> DataSpace:
        from repro.distributions.indirect import UserDefined
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("A", n, dynamic=True)
        ds.declare("B", n)
        ds.distribute("A", [Indirect([(5 * i + 2) % p
                                      for i in range(n)])], to="PR")
        ds.distribute("B", [UserDefined(lambda i: (i * i) % p,
                                        name="sq")], to="PR")
        return ds

    def test_indirect_schedule_cached_and_exact(self):
        ds = self._indirect_pair()
        stmt = _stmt(48)
        s1 = schedule_for(ds, stmt, 6)
        s2 = schedule_for(ds, _stmt(48), 6)
        assert s1 is s2
        assert ds.schedule_cache.hits == 1
        m, local, off = comm_matrix(
            ds.distribution_of("A"), ds.section("A", Triplet(2, 48)),
            ds.distribution_of("B"), ds.section("B", Triplet(1, 47)), 6)
        np.testing.assert_array_equal(s1.refs[0].words, m)
        assert (s1.refs[0].local, s1.refs[0].off) == (local, off)

    def test_indirect_routing_schedule_partitions_iterations(self):
        ds = self._indirect_pair()
        sched = schedule_for(ds, _stmt(48), 6, routing=True)
        route = sched.routes[0]
        covered = int(route.local_mask.sum()) + sum(
            positions.size for _, _, positions in route.chunks)
        assert covered == sched.iteration_size

    def test_redistribute_indirect_invalidates_and_recompiles(self):
        ds = self._indirect_pair()
        stmt = _stmt(48)
        old = schedule_for(ds, stmt, 6)
        epoch = ds.layout_epoch
        ds.redistribute("A", [Indirect([i % 6 for i in range(48)])],
                        to="PR")
        assert ds.layout_epoch > epoch
        assert len(ds.schedule_cache) == 0
        new = schedule_for(ds, stmt, 6)
        assert new is not old
        assert new.epoch == ds.layout_epoch
        m, _, _ = comm_matrix(
            ds.distribution_of("A"), ds.section("A", Triplet(2, 48)),
            ds.distribution_of("B"), ds.section("B", Triplet(1, 47)), 6)
        np.testing.assert_array_equal(new.refs[0].words, m)


class TestInvalidation:
    def test_redistribute_invalidates(self):
        ds = _pair()
        ds.set_dynamic("B")
        before = schedule_for(ds, _stmt(), 8)
        epoch = ds.layout_epoch
        ds.redistribute("B", [Block()], to="PR")
        assert ds.layout_epoch > epoch
        assert len(ds.schedule_cache) == 0
        after = schedule_for(ds, _stmt(), 8)
        assert after is not before
        # BLOCK = BLOCK shifted by one: neighbour traffic only, far less
        # than the BLOCK = CYCLIC(3) all-to-all of the old layout
        assert after.total_words < before.total_words

    def test_realign_invalidates(self):
        ds = _pair()
        ds.set_dynamic("B")
        before = schedule_for(ds, _stmt(), 8)
        spec = AlignSpec("B", (AxisDummy("I"),), "A",
                         (BaseExpr(Dummy("I")),))
        ds.realign(spec)
        assert len(ds.schedule_cache) == 0
        after = schedule_for(ds, _stmt(), 8)
        assert after is not before
        # B now collocated with A: only the shift-by-one boundary traffic
        assert after.total_words < before.total_words

    def test_new_schedule_correct_after_redistribute(self):
        ds = _pair()
        ds.set_dynamic("B")
        schedule_for(ds, _stmt(), 8)
        ds.redistribute("B", [Block()], to="PR")
        stmt = _stmt()
        sched = schedule_for(ds, stmt, 8)
        m, _, _ = comm_matrix(
            ds.distribution_of("A"), stmt.lhs.section(ds),
            ds.distribution_of("B"), stmt.rhs.section(ds), 8)
        np.testing.assert_array_equal(sched.refs[0].words, m)

    def test_deallocate_invalidates_schedules_of_the_deallocated(self):
        ds = _pair()
        ds.declare("T", 64, allocatable=True, dynamic=True)
        stmt_t = Assignment(ArrayRef("T", (Triplet(2, 64),)),
                            ArrayRef("B", (Triplet(1, 63),)))
        schedule_for(ds, stmt_t, 8)
        schedule_for(ds, _stmt(), 8)
        assert len(ds.schedule_cache) == 2
        ds.deallocate("T")
        # the schedule reading T dies with it; A = B is untouched by
        # the deallocation and survives (fine-grained invalidation)
        assert len(ds.schedule_cache) == 1
        assert schedule_for(ds, _stmt(), 8) is not None
        assert ds.schedule_cache.hits == 1

    def test_unrelated_forest_schedule_survives_remap(self):
        """The fine-grained invalidation contract: a remap of one
        alignment forest must not drop compiled schedules whose arrays
        all live in *other* forests."""
        ds = _pair()            # A BLOCK, B CYCLIC(3)
        ds.declare("U", 64, dynamic=True)
        ds.declare("V", 64)
        ds.align(AlignSpec("V", (AxisDummy("I"),), "U",
                           (BaseExpr(Dummy("I")),)))   # forest {U, V}
        stmt_ab = _stmt()                              # forest {A}, {B}
        stmt_uv = Assignment(ArrayRef("U", (Triplet(2, 64),)),
                             ArrayRef("V", (Triplet(1, 63),)))
        before_ab = schedule_for(ds, stmt_ab, 8)
        before_uv = schedule_for(ds, stmt_uv, 8)
        assert len(ds.schedule_cache) == 2

        # remap the {U, V} forest: its schedules drop, A = B survives
        ds.redistribute("U", [Cyclic(2)], to="PR")
        assert len(ds.schedule_cache) == 1
        assert schedule_for(ds, stmt_ab, 8) is before_ab
        assert ds.schedule_cache.hits == 1
        after_uv = schedule_for(ds, stmt_uv, 8)
        assert after_uv is not before_uv
        # and the recompiled schedule matches the direct oracle
        m, _, _ = comm_matrix(
            ds.distribution_of("U"), stmt_uv.lhs.section(ds),
            ds.distribution_of("V"), stmt_uv.rhs.section(ds), 8)
        np.testing.assert_array_equal(after_uv.refs[0].words, m)

    def test_remap_of_primary_invalidates_reconstructed_secondaries(self):
        """REDISTRIBUTE of a primary re-CONSTRUCTs its secondaries, so a
        schedule touching only a *secondary* of the remapped primary must
        also drop."""
        ds = _pair()
        ds.set_dynamic("A")
        ds.declare("C", 64)
        ds.align(AlignSpec("C", (AxisDummy("I"),), "A",
                           (BaseExpr(Dummy("I")),)))   # C secondary of A
        stmt_cb = Assignment(ArrayRef("C", (Triplet(2, 64),)),
                             ArrayRef("B", (Triplet(1, 63),)))
        before = schedule_for(ds, stmt_cb, 8)
        ds.redistribute("A", [Cyclic(2)], to="PR")     # C's map changes too
        assert len(ds.schedule_cache) == 0
        after = schedule_for(ds, stmt_cb, 8)
        assert after is not before
        m, _, _ = comm_matrix(
            ds.distribution_of("C"), stmt_cb.lhs.section(ds),
            ds.distribution_of("B"), stmt_cb.rhs.section(ds), 8)
        np.testing.assert_array_equal(after.refs[0].words, m)

    def test_realign_of_aligned_array_invalidates_forest_sharers(self):
        """Regression for the forest-sharing invalidation edge: REALIGN
        of an array that is itself *aligned* (a secondary) must also
        drop cached schedules of the *other* arrays in its forest — a
        sibling's schedule that references the realigned array was
        compiled against the old forest and must not survive."""
        ds = _pair()            # A BLOCK, B CYCLIC(3)
        ds.declare("C", 64, dynamic=True)
        ds.declare("E", 64)
        ds.align(AlignSpec("C", (AxisDummy("I"),), "A",
                           (BaseExpr(Dummy("I")),)))   # C secondary of A
        ds.align(AlignSpec("E", (AxisDummy("I"),), "A",
                           (BaseExpr(Dummy("I")),)))   # E sibling of C
        stmt_c = Assignment(ArrayRef("C", (Triplet(2, 64),)),
                            ArrayRef("A", (Triplet(1, 63),)))
        # the forest-sharing hazard: E's schedule reads C
        stmt_e = Assignment(ArrayRef("E", (Triplet(2, 64),)),
                            ArrayRef("C", (Triplet(1, 63),)))
        before_c = schedule_for(ds, stmt_c, 8)
        before_e = schedule_for(ds, stmt_e, 8)
        assert before_e.total_words == 7   # pure shift while collocated
        assert len(ds.schedule_cache) == 2

        # REALIGN the *aligned* C onto B's CYCLIC(3) mapping: every
        # schedule compiled in the old forest must be dropped
        ds.realign(AlignSpec("C", (AxisDummy("I"),), "B",
                             (BaseExpr(Dummy("I")),)))
        assert len(ds.schedule_cache) == 0

        after_c = schedule_for(ds, stmt_c, 8)
        after_e = schedule_for(ds, stmt_e, 8)
        assert after_c is not before_c and after_e is not before_e
        # C moved off A's BLOCK mapping: the sibling's schedule now has
        # real redistribution traffic where the stale one had a shift
        assert after_e.total_words > before_e.total_words
        # and the fresh schedules match the direct oracle
        for stmt, sched, lhs, ref in ((stmt_c, after_c, "C", "A"),
                                      (stmt_e, after_e, "E", "C")):
            m, _, _ = comm_matrix(
                ds.distribution_of(lhs), stmt.lhs.section(ds),
                ds.distribution_of(ref), stmt.rhs.section(ds), 8)
            np.testing.assert_array_equal(sched.refs[0].words, m)


class TestRoutingSchedules:
    def test_message_accurate_repeat_routes_fresh_values(self):
        n = 48
        ds = _pair(n)
        machine = DistributedMachine(MachineConfig(8))
        ex = MessageAccurateExecutor(ds, machine)
        stmt = Assignment(ArrayRef("A", (Triplet(2, n),)),
                          ArrayRef("B", (Triplet(1, n - 1),)))
        ds.arrays["B"].data[:] = np.arange(n, dtype=np.float64)
        ex.execute(stmt)
        first = ds.arrays["A"].data.copy()
        # mutate the operand; the cached routing must carry new payloads
        ds.arrays["B"].data[:] = np.arange(n, dtype=np.float64) * 10
        ex.execute(stmt)
        assert ds.schedule_cache.hits >= 1
        np.testing.assert_array_equal(
            ds.arrays["A"].data[1:], np.arange(n - 1, dtype=np.float64) * 10)
        assert not np.array_equal(ds.arrays["A"].data, first)

    def test_routing_and_counting_schedules_are_disjoint_keys(self):
        ds = _pair()
        counting = schedule_for(ds, _stmt(), 8)
        routing = schedule_for(ds, _stmt(), 8, routing=True)
        assert counting is not routing
        assert routing.routes is not None and counting.routes is None
        assert counting.refs and not routing.refs

    def test_routing_words_match_counting_matrix(self):
        ds = _pair()
        counting = schedule_for(ds, _stmt(), 8, strategy="oracle")
        routing = schedule_for(ds, _stmt(), 8, routing=True)
        total = sum(len(pos) for _, _, pos in routing.routes[0].chunks)
        assert total == int(counting.refs[0].words.sum())


class TestBulkKernels:
    @pytest.mark.parametrize("fmt", [
        Block(), Block(variant=BlockVariant.VIENNA), Block(size=8),
        Cyclic(), Cyclic(3),
        GeneralBlock.from_sizes([10, 0, 17, 8, 2, 12, 6, 9]),
        Indirect([i % 8 for i in range(64)]),
        ReplicatedFormat(),
    ], ids=str)
    def test_owners_and_local_index_match_scalar(self, fmt):
        dim = Triplet(1, 64)
        dd = fmt.bind(dim, 8)
        vals = dim.values()
        np.testing.assert_array_equal(
            dd.owners_of(vals),
            np.array([dd.owner_coord(int(v)) for v in vals]))
        np.testing.assert_array_equal(
            dd.local_index_of(vals),
            np.array([dd.local_index(int(v)) for v in vals]))

    def test_distribution_owners_of_matches_owner_map(self):
        ds = DataSpace(16)
        ds.processors("GRID", 4, 4)
        ds.declare("M", 12, 12)
        ds.distribute("M", [Block(), Cyclic(2)], to="GRID")
        dist = ds.distribution_of("M")
        indices = np.array([(i, j) for j in range(1, 13)
                            for i in range(1, 13)], dtype=np.int64)
        got = dist.owners_of(indices)
        want = dist.primary_owner_map().reshape(-1, order="F")
        np.testing.assert_array_equal(got, want)

    def test_constructed_owners_of_through_alignment(self):
        ds = _pair()
        ds.declare("C", 32)
        spec = AlignSpec("C", (AxisDummy("I"),), "A",
                         (BaseExpr(Dummy("I") * 2),))
        ds.align(spec)
        dist = ds.distribution_of("C")
        indices = np.arange(1, 33, dtype=np.int64).reshape(-1, 1)
        got = dist.owners_of(indices)
        want = np.array([dist.primary_owner((int(i),))
                         for i in range(1, 33)])
        np.testing.assert_array_equal(got, want)

    def test_owner_map_is_memoized_and_read_only(self):
        ds = _pair()
        dist = ds.distribution_of("A")
        m1 = dist.primary_owner_map()
        m2 = dist.primary_owner_map()
        assert m1 is m2
        with pytest.raises(ValueError):
            m1[0] = 99


class TestCacheBound:
    def test_lru_eviction_keeps_table_bounded(self):
        ds = _pair(256)
        ds.schedule_cache.maxsize = 4
        for i in range(1, 12):
            stmt = Assignment(ArrayRef("A", (Triplet(i, i + 64),)),
                              ArrayRef("B", (Triplet(i, i + 64),)))
            schedule_for(ds, stmt, 8)
        assert len(ds.schedule_cache) == 4
        assert ds.schedule_cache.evictions == 7

    def test_lru_refresh_on_hit(self):
        ds = _pair(256)
        ds.schedule_cache.maxsize = 2
        s1 = Assignment(ArrayRef("A", (Triplet(1, 64),)),
                        ArrayRef("B", (Triplet(1, 64),)))
        s2 = Assignment(ArrayRef("A", (Triplet(2, 65),)),
                        ArrayRef("B", (Triplet(2, 65),)))
        s3 = Assignment(ArrayRef("A", (Triplet(3, 66),)),
                        ArrayRef("B", (Triplet(3, 66),)))
        schedule_for(ds, s1, 8)
        schedule_for(ds, s2, 8)
        schedule_for(ds, s1, 8)          # refresh s1; s2 becomes LRU
        schedule_for(ds, s3, 8)          # evicts s2
        schedule_for(ds, s1, 8)
        assert ds.schedule_cache.hits == 2
        assert ds.schedule_cache.evictions == 1


class TestSparseSectionPath:
    def test_small_section_owner_map_matches_dense(self):
        from repro.engine.owner_computes import section_owner_map
        from repro.fortran.section import ArraySection
        ds = DataSpace(8)
        ds.processors("GRID", 4, 2)
        ds.declare("M", 200, 100)
        ds.distribute("M", [Block(), Cyclic(3)], to="GRID")
        dist = ds.distribution_of("M")
        sec = ArraySection(ds.arrays["M"].domain, (Triplet(5, 60, 7), 42))
        assert dist._owner_map_cache is None
        sparse = section_owner_map(dist, sec).copy()   # sparse kernel path
        dense = dist.primary_owner_map()[(slice(4, 60, 7), 41)]
        np.testing.assert_array_equal(sparse, dense)


class TestBatchedExchange:
    def test_exchange_equals_individual_sends(self):
        p = 6
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 9, size=(p, p))
        batched = DistributedMachine(MachineConfig(p))
        batched.exchange(matrix, tag="t")
        serial = DistributedMachine(MachineConfig(p))
        for q in range(p):
            for d in range(p):
                if q != d:
                    serial.send(q, d, int(matrix[q, d]), tag="t")
        assert batched.ledger == serial.ledger
        np.testing.assert_array_equal(batched.stats.msgs_sent,
                                      serial.stats.msgs_sent)
        np.testing.assert_array_equal(batched.stats.words_recv,
                                      serial.stats.words_recv)
        assert batched.stats.hop_weighted_words == \
            pytest.approx(serial.stats.hop_weighted_words)
        assert batched.elapsed == pytest.approx(serial.elapsed)

    def test_exchange_ignores_diagonal_and_zeros(self):
        p = 4
        matrix = np.zeros((p, p), dtype=np.int64)
        matrix[1, 1] = 50   # diagonal: ignored
        machine = DistributedMachine(MachineConfig(p))
        machine.exchange(matrix)
        assert machine.ledger == [] and machine.elapsed == 0.0
