"""Property-based tests: distribution-function invariants (Definitions 1-2).

Every bound per-dimension distribution must be a *total* mapping into
non-empty coordinate sets whose owned sets partition the dimension
(non-replicated formats), with bijective local<->global translation and
vectorized owners agreeing with scalar owners.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.base import Collapsed
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.fortran.triplet import Triplet

_dims = st.tuples(st.integers(-20, 20), st.integers(1, 120)).map(
    lambda t: Triplet(t[0], t[0] + t[1] - 1, 1))
_np = st.integers(1, 10)


@st.composite
def bound_distributions(draw):
    dim = draw(_dims)
    np_ = draw(_np)
    kind = draw(st.sampled_from(["block", "vienna", "cyclic", "gb",
                                 "colon"]))
    if kind == "block":
        return Block().bind(dim, np_), dim, np_
    if kind == "vienna":
        return Block(variant=BlockVariant.VIENNA).bind(dim, np_), dim, np_
    if kind == "cyclic":
        k = draw(st.integers(1, 7))
        return Cyclic(k).bind(dim, np_), dim, np_
    if kind == "gb":
        cuts = sorted(draw(st.lists(
            st.integers(dim.lower - 1, dim.last),
            min_size=np_ - 1, max_size=np_ - 1)))
        return GeneralBlock(cuts).bind(dim, np_), dim, np_
    return Collapsed().bind(dim, 1), dim, 1


@given(bound_distributions())
@settings(max_examples=150)
def test_totality(case):
    dd, dim, np_ = case
    for i in dim:
        owners = dd.owner_coords(i)
        assert len(owners) >= 1
        assert all(0 <= p < dd.np_ for p in owners)


@given(bound_distributions())
@settings(max_examples=150)
def test_owned_sets_partition_dimension(case):
    dd, dim, np_ = case
    seen: dict[int, int] = {}
    for p in range(dd.np_):
        for t in dd.owned(p):
            for i in t:
                assert i not in seen, f"{i} owned by {seen[i]} and {p}"
                seen[i] = p
    assert set(seen) == set(dim)


@given(bound_distributions())
@settings(max_examples=150)
def test_owner_coord_consistent_with_owned(case):
    dd, dim, np_ = case
    for p in range(dd.np_):
        for t in dd.owned(p):
            for i in t:
                assert dd.owner_coord(i) == p


@given(bound_distributions())
@settings(max_examples=100)
def test_vectorized_owner_agrees(case):
    dd, dim, np_ = case
    vals = dim.values()
    got = dd.owner_coord_array(vals)
    expected = np.array([dd.owner_coord(int(v)) for v in vals])
    np.testing.assert_array_equal(got, expected)


@given(bound_distributions())
@settings(max_examples=100)
def test_local_global_bijection(case):
    dd, dim, np_ = case
    for p in range(dd.np_):
        locals_seen = set()
        for t in dd.owned(p):
            for i in t:
                loc = dd.local_index(i)
                assert loc not in locals_seen
                locals_seen.add(loc)
                assert dd.global_index(p, loc) == i
        assert len(locals_seen) == dd.local_extent(p)


@given(bound_distributions())
@settings(max_examples=100)
def test_extents_sum_to_dimension(case):
    dd, dim, np_ = case
    assert sum(dd.local_extent(p) for p in range(dd.np_)) == len(dim)
