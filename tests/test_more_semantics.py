"""Additional semantic coverage: transpose alignments, scalar-arrangement
placement (§3), multi-dimensional REALIGN chains, and the paper's §7/§8.2
worked procedure fragments."""

import numpy as np
import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.core.procedures import DummyMode, DummySpec, Procedure
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import DistributionError, MappingError
from repro.fortran.triplet import Triplet
from repro.processors.arrangement import ScalarPolicy


class TestTransposeAlignment:
    """Permutation alignments are legal (only *skew* is excluded,
    §5.1): ALIGN B(I,J) WITH A(J,I)."""

    def make(self, np_=4):
        ds = DataSpace(np_ * np_)
        ds.processors("PR", np_, np_)
        ds.declare("A", 12, 8)
        ds.declare("B", 8, 12)
        ds.distribute("A", [Block(), Cyclic()], to="PR")
        i, j = Dummy("I"), Dummy("J")
        ds.align(AlignSpec("B", [AxisDummy("I"), AxisDummy("J")], "A",
                           [BaseExpr(j), BaseExpr(i)]))
        return ds

    def test_transposed_collocation(self):
        ds = self.make()
        for i in (1, 4, 8):
            for j in (1, 6, 12):
                assert ds.owners("B", (i, j)) == ds.owners("A", (j, i))

    def test_transposed_owner_map(self):
        ds = self.make()
        bmap = ds.owner_map("B")
        amap = ds.owner_map("A")
        np.testing.assert_array_equal(bmap, amap.T)

    def test_transpose_copy_traffic(self):
        # copying A into its transposed alias costs nothing (collocated)
        from repro.engine.assignment import Assignment
        from repro.engine.executor import SimulatedExecutor
        from repro.engine.expr import ArrayRef
        from repro.machine.config import MachineConfig
        from repro.machine.simulator import DistributedMachine
        ds = self.make()
        machine = DistributedMachine(MachineConfig(16))
        # B(i,j) = A(j,i) elementwise: sections conform via transpose of
        # strides — model as two 1-D sweeps per row to stay conformable
        stmt = Assignment(
            ArrayRef("B", (Triplet(1, 8), 3)),
            ArrayRef("A", (3, Triplet(1, 8))))
        rep = SimulatedExecutor(ds, machine).execute(stmt)
        assert rep.total_words == 0 and rep.locality == 1.0


class TestScalarArrangementPlacement:
    def test_control_placement(self):
        ds = DataSpace(8)
        ds.scalar_processors("CTRL")
        ds.declare("A", 16)
        ds.place_on_scalar("A", "CTRL")
        assert ds.owners("A", (5,)) == frozenset({0})

    def test_replicated_placement(self):
        ds = DataSpace(8)
        ds.scalar_processors("EVERY", policy=ScalarPolicy.REPLICATED)
        ds.declare("A", 16)
        ds.place_on_scalar("A", "EVERY")
        assert ds.owners("A", (5,)) == frozenset(range(8))
        assert ds.distribution_of("A").is_replicated

    def test_non_scalar_rejected(self):
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.declare("A", 16)
        with pytest.raises(DistributionError):
            ds.place_on_scalar("A", "PR")

    def test_aligned_array_rejected(self):
        ds = DataSpace(8)
        ds.scalar_processors("CTRL")
        ds.declare("A", 16)
        ds.declare("B", 16)
        ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(Dummy("I"))]))
        with pytest.raises(MappingError):
            ds.place_on_scalar("B", "CTRL")

    def test_replicated_operand_reads_are_local(self):
        from repro.engine.assignment import Assignment
        from repro.engine.executor import SimulatedExecutor
        from repro.engine.expr import ArrayRef
        from repro.machine.config import MachineConfig
        from repro.machine.simulator import DistributedMachine
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.scalar_processors("EVERY", policy=ScalarPolicy.REPLICATED)
        ds.declare("A", 64)
        ds.declare("R", 64)
        ds.distribute("A", [Block()], to="PR")
        ds.place_on_scalar("R", "EVERY")
        machine = DistributedMachine(MachineConfig(8))
        rep = SimulatedExecutor(ds, machine).execute(
            Assignment(ArrayRef("A"), ArrayRef("R")))
        assert rep.total_words == 0 and rep.locality == 1.0


class TestRepeatedRealign:
    def test_ping_pong_realign(self):
        ds = DataSpace(8)
        ds.processors("PR", 8)
        ds.declare("A", 64)
        ds.declare("C", 64)
        ds.declare("B", 64, dynamic=True)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("C", [Cyclic()], to="PR")
        spec_a = AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(Dummy("I"))])
        spec_c = AlignSpec("B", [AxisDummy("I")], "C",
                           [BaseExpr(Dummy("I"))])
        ds.align(spec_a)
        for _ in range(3):
            ds.realign(spec_c)
            assert ds.owners("B", (9,)) == ds.owners("C", (9,))
            ds.realign(spec_a)
            assert ds.owners("B", (9,)) == ds.owners("A", (9,))
        ds.forest.validate()
        # six realign remap events recorded
        realigns = [e for e in ds.remap_events if e.reason == "REALIGN"]
        assert len(realigns) == 6

    def test_realign_2d_strided(self):
        # the §6 shape: B(:,:) WITH A(M::M, 1::M), repeated with a
        # different M after redistribution
        ds = DataSpace(16)
        ds.processors("PR", 4, 4)
        ds.declare("A", 32, 32, dynamic=True)
        ds.declare("B", 8, 8, dynamic=True)
        ds.distribute("A", [Cyclic(), Block()], to="PR")
        ds.constant("M", 4)
        from repro.align.spec import AxisColon, BaseTriplet
        from repro.align.ast import Name
        spec = AlignSpec(
            "B", [AxisColon(), AxisColon()], "A",
            [BaseTriplet(Name("M"), None, Name("M")),
             BaseTriplet(None, None, Name("M"))])
        ds.realign(spec)
        assert ds.owners("B", (2, 3)) == ds.owners("A", (8, 9))
        ds.redistribute("A", [Block(), Cyclic()], to="PR")
        # alignment invariant preserved across the base redistribution
        assert ds.owners("B", (2, 3)) == ds.owners("A", (8, 9))


class TestPaperProcedureFragments:
    """§8.1.2's subroutine variants, as Python-level procedures."""

    def make_caller(self, np_=4):
        ds = DataSpace(np_)
        ds.processors("PR", np_)
        ds.declare("A", 1000)
        ds.distribute("A", [Cyclic(3)], to="PR")
        return ds

    def test_sub_with_inherited_dummy(self):
        # SUBROUTINE SUB(X); REAL X(:) — X inherits its distribution
        ds = self.make_caller()
        captured = {}

        def body(frame, x):
            captured["dist"] = frame.distribution_of("X")

        Procedure("SUB", [DummySpec("X", DummyMode.INHERIT)],
                  body).call(ds, ("A", (Triplet(2, 996, 2),)))
        dist = captured["dist"]
        for k in (1, 250, 498):
            assert dist.owners((k,)) == ds.owners("A", (2 * k,))

    def test_sub_with_whole_array_and_alignment(self):
        # SUBROUTINE SUB(A, X): ALIGN X(I) WITH A(2*I);
        # DISTRIBUTE A *(CYCLIC(3)) — the paper's template-free variant
        ds = self.make_caller()
        ds.declare("XACT", 498)
        spec = AlignSpec("X", [AxisDummy("I")], "AA",
                         [BaseExpr(2 * Dummy("I"))])
        captured = {}

        def body(frame, aa, x):
            captured["same"] = all(
                frame.owners("X", (k,)) == frame.owners("AA", (2 * k,))
                for k in (1, 100, 498))

        proc = Procedure("SUB", [
            DummySpec("AA", DummyMode.INHERIT_MATCH,
                      formats=(Cyclic(3),), to="PR"),
            DummySpec("X", DummyMode.ALIGNED, align=spec),
        ], body)
        proc.call(ds, "A", "XACT")
        assert captured["same"]

    def test_inherit_match_asterisk_semantics(self):
        # DISTRIBUTE A *(CYCLIC(3)): matching passes quietly
        ds = self.make_caller()
        proc = Procedure("SUB", [DummySpec(
            "AA", DummyMode.INHERIT_MATCH, formats=(Cyclic(3),),
            to="PR")], lambda frame, aa: None)
        rec = proc.call(ds, "A")
        assert not rec.entry_remaps and not rec.exit_restores
