"""Unit tests for the Fortran subscript-triplet algebra (S1)."""

import numpy as np
import pytest

from repro.fortran.triplet import EMPTY_TRIPLET, Triplet


class TestLength:
    def test_unit_stride(self):
        assert len(Triplet(1, 10)) == 10

    def test_strided(self):
        # the paper's §8.1.2 section: A(2:996:2)
        assert len(Triplet(2, 996, 2)) == 498

    def test_non_divisible_extent(self):
        assert len(Triplet(1, 10, 3)) == 4        # 1,4,7,10
        assert len(Triplet(1, 9, 3)) == 3         # 1,4,7

    def test_negative_stride(self):
        assert len(Triplet(10, 1, -2)) == 5       # 10,8,6,4,2

    def test_empty_forward(self):
        assert len(Triplet(5, 4)) == 0

    def test_empty_backward(self):
        assert len(Triplet(1, 10, -1)) == 0

    def test_singleton(self):
        assert len(Triplet.single(7)) == 1

    def test_fortran_formula_truncation_case(self):
        # MAX(INT((u-l+s)/s), 0) with negative non-integral quotient
        assert len(Triplet(1, 4, -2)) == 0

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            Triplet(1, 10, 0)


class TestValuesAndMembership:
    def test_iteration_order(self):
        assert list(Triplet(2, 10, 3)) == [2, 5, 8]

    def test_descending_iteration(self):
        assert list(Triplet(9, 3, -3)) == [9, 6, 3]

    def test_values_vectorized(self):
        np.testing.assert_array_equal(
            Triplet(0, 8, 2).values(), [0, 2, 4, 6, 8])

    def test_contains(self):
        t = Triplet(2, 996, 2)
        assert 2 in t and 996 in t and 500 in t
        assert 3 not in t and 998 not in t and 0 not in t

    def test_contains_descending(self):
        t = Triplet(10, 2, -4)    # 10, 6, 2
        assert 6 in t and 2 in t
        assert 4 not in t

    def test_contains_non_int(self):
        assert "x" not in Triplet(1, 10)

    def test_contains_array(self):
        t = Triplet(1, 9, 2)
        got = t.contains_array(np.array([1, 2, 3, 9, 11]))
        np.testing.assert_array_equal(got, [True, False, True, True, False])

    def test_position_and_value_at(self):
        t = Triplet(5, 25, 5)
        assert t.position(15) == 2
        assert t.value_at(2) == 15
        with pytest.raises(ValueError):
            t.position(7)
        with pytest.raises(IndexError):
            t.value_at(5)

    def test_first_last(self):
        t = Triplet(3, 11, 4)     # 3, 7, 11
        assert t.first == 3 and t.last == 11
        t2 = Triplet(3, 10, 4)    # 3, 7 (upper not reached)
        assert t2.last == 7

    def test_first_of_empty_raises(self):
        with pytest.raises(ValueError):
            _ = EMPTY_TRIPLET.first


class TestCanonicalForms:
    def test_normalized_tightens_upper(self):
        assert Triplet(1, 10, 4).normalized() == Triplet(1, 9, 4)

    def test_normalized_empty(self):
        assert Triplet(5, 1).normalized() == EMPTY_TRIPLET

    def test_normalized_singleton_stride(self):
        assert Triplet(4, 6, 5).normalized() == Triplet(4, 4, 1)

    def test_ascending_set_reverses(self):
        assert Triplet(9, 1, -2).as_ascending_set() == Triplet(1, 9, 2)

    def test_ascending_set_same_values(self):
        t = Triplet(10, 2, -4)
        assert sorted(t) == list(t.as_ascending_set())


class TestIntersection:
    def test_same_stride_offset_match(self):
        a = Triplet(1, 99, 2)
        b = Triplet(3, 51, 2)
        assert a.intersect(b) == Triplet(3, 51, 2)

    def test_same_stride_offset_mismatch(self):
        a = Triplet(0, 100, 2)    # evens
        b = Triplet(1, 99, 2)     # odds
        assert a.intersect(b).is_empty

    def test_coprime_strides(self):
        a = Triplet(0, 100, 2)
        b = Triplet(0, 100, 3)
        assert a.intersect(b) == Triplet(0, 96, 6)

    def test_crt_anchor(self):
        # 1 mod 4 intersect 2 mod 3 -> 5 mod 12
        a = Triplet(1, 100, 4)
        b = Triplet(2, 100, 3)
        got = a.intersect(b)
        assert got.stride == 12 and got.lower == 5

    def test_disjoint_ranges(self):
        assert Triplet(1, 10).intersect(Triplet(20, 30)).is_empty

    def test_with_empty(self):
        assert Triplet(1, 10).intersect(EMPTY_TRIPLET).is_empty

    def test_direction_insensitive(self):
        a = Triplet(99, 1, -2)
        b = Triplet(3, 51, 2)
        assert a.intersect(b) == Triplet(3, 51, 2)

    def test_brute_force_agreement(self):
        cases = [
            (Triplet(2, 996, 2), Triplet(1, 1000, 3)),
            (Triplet(5, 500, 7), Triplet(3, 444, 5)),
            (Triplet(-10, 50, 4), Triplet(-8, 52, 6)),
            (Triplet(0, 30, 1), Triplet(7, 21, 1)),
        ]
        for a, b in cases:
            expected = sorted(set(a) & set(b))
            assert list(a.intersect(b)) == expected

    def test_overlaps(self):
        assert Triplet(1, 10).overlaps(Triplet(10, 20))
        assert not Triplet(1, 9).overlaps(Triplet(10, 20))

    def test_subset(self):
        assert Triplet(2, 10, 4).is_subset_of(Triplet(0, 20, 2))
        assert not Triplet(2, 10, 3).is_subset_of(Triplet(0, 20, 2))
        assert EMPTY_TRIPLET.is_subset_of(Triplet(1, 2))
        assert not Triplet(1, 2).is_subset_of(EMPTY_TRIPLET)


class TestMaps:
    def test_shift(self):
        assert Triplet(1, 9, 2).shift(10) == Triplet(11, 19, 2)

    def test_affine_image_positive(self):
        # the §8.1.1 alignment 2*I-1 over I in [1:5] -> {1,3,5,7,9}
        assert Triplet(1, 5).affine_image(2, -1) == Triplet(1, 9, 2)

    def test_affine_image_negative_a(self):
        got = Triplet(1, 4).affine_image(-3, 0)
        assert list(got) == [-12, -9, -6, -3]

    def test_affine_image_zero_a(self):
        assert Triplet(1, 100).affine_image(0, 7) == Triplet(7, 7, 1)

    def test_affine_image_empty(self):
        assert EMPTY_TRIPLET.affine_image(2, 1).is_empty

    def test_compose_simple(self):
        outer = Triplet(2, 996, 2)     # the passed section
        inner = Triplet(1, 10, 3)      # sub-section of the dummy
        got = outer.compose(inner)
        assert list(got) == [outer.value_at(k - 1) for k in inner]

    def test_compose_descending_inner(self):
        outer = Triplet(10, 50, 10)
        inner = Triplet(5, 1, -2)
        assert list(outer.compose(inner)) == [50, 30, 10]

    def test_compose_out_of_range(self):
        with pytest.raises(IndexError):
            Triplet(1, 10).compose(Triplet(1, 11))

    def test_compose_empty_inner(self):
        assert Triplet(1, 10).compose(EMPTY_TRIPLET).is_empty


class TestPresentation:
    def test_str_default_stride(self):
        assert str(Triplet(1, 10)) == "1:10"

    def test_str_strided(self):
        assert str(Triplet(2, 996, 2)) == "2:996:2"
