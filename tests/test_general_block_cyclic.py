"""Unit tests for GENERAL_BLOCK (§4.1.2) and CYCLIC(k) (§4.1.3)."""

import numpy as np
import pytest

from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.errors import DistributionError
from repro.fortran.triplet import Triplet


class TestGeneralBlock:
    def test_paper_block_ranges(self):
        # §4.1.2: block 1 is [1:G(1)], block i is [G(i-1)+1 : G(i)],
        # block NP is [G(NP-1)+1 : N]
        g = GeneralBlock([3, 7, 9])
        gb = g.bind(Triplet(1, 12), 4)
        assert gb.owned(0) == (Triplet(1, 3, 1),)
        assert gb.owned(1) == (Triplet(4, 7, 1),)
        assert gb.owned(2) == (Triplet(8, 9, 1),)
        assert gb.owned(3) == (Triplet(10, 12, 1),)

    def test_owner_lookup(self):
        gb = GeneralBlock([3, 7, 9]).bind(Triplet(1, 12), 4)
        owners = [gb.owner_coord(i) for i in range(1, 13)]
        assert owners == [0, 0, 0, 1, 1, 1, 1, 2, 2, 3, 3, 3]

    def test_from_sizes(self):
        g = GeneralBlock.from_sizes([4, 0, 6], lower=1)
        gb = g.bind(Triplet(1, 10), 3)
        assert gb.local_extent(0) == 4
        assert gb.local_extent(1) == 0
        assert gb.local_extent(2) == 6

    def test_empty_block_skipped_in_ownership(self):
        gb = GeneralBlock.from_sizes([4, 0, 6]).bind(Triplet(1, 10), 3)
        # element 5 belongs to block 2 (block 1 is empty)
        assert gb.owner_coord(5) == 2
        assert gb.owned(1) == ()

    def test_m_ge_np_minus_1_required(self):
        with pytest.raises(DistributionError):
            GeneralBlock([5]).bind(Triplet(1, 10), 4)

    def test_full_length_bounds_validated(self):
        # G(NP) must equal the upper bound when given
        GeneralBlock([3, 7, 10]).bind(Triplet(1, 10), 3)
        with pytest.raises(DistributionError):
            GeneralBlock([3, 7, 9]).bind(Triplet(1, 10), 3)

    def test_decreasing_bounds_rejected(self):
        with pytest.raises(DistributionError):
            GeneralBlock([7, 3])

    def test_out_of_range_bound_rejected(self):
        with pytest.raises(DistributionError):
            GeneralBlock([3, 20]).bind(Triplet(1, 10), 3)

    def test_nonunit_lower_bound(self):
        gb = GeneralBlock([2, 5]).bind(Triplet(0, 9), 3)
        assert gb.owned(0) == (Triplet(0, 2, 1),)
        assert gb.owned(2) == (Triplet(6, 9, 1),)

    def test_vectorized_matches_scalar(self):
        gb = GeneralBlock([10, 10, 25, 60]).bind(Triplet(1, 80), 5)
        vals = np.arange(1, 81)
        np.testing.assert_array_equal(
            gb.owner_coord_array(vals),
            [gb.owner_coord(int(v)) for v in vals])

    def test_local_global_roundtrip(self):
        gb = GeneralBlock([10, 10, 25, 60]).bind(Triplet(1, 80), 5)
        for p in range(5):
            for t in gb.owned(p):
                for i in t:
                    assert gb.global_index(p, gb.local_index(i)) == i

    def test_balanced_for_costs(self):
        costs = np.arange(1, 101, dtype=float)
        g = GeneralBlock.balanced_for_costs(costs, 4)
        gb = g.bind(Triplet(1, 100), 4)
        work = np.zeros(4)
        for i in range(1, 101):
            work[gb.owner_coord(i)] += costs[i - 1]
        assert work.max() / work.mean() < 1.15

    def test_block_sizes(self):
        gb = GeneralBlock([3, 7, 9]).bind(Triplet(1, 12), 4)
        np.testing.assert_array_equal(gb.block_sizes(), [3, 4, 2, 3])


class TestCyclic:
    def test_standard_semantics(self):
        # (1-based) owner = ((ceil(i/k) - 1) mod NP) + 1
        cd = Cyclic(3).bind(Triplet(1, 30), 4)
        for i in range(1, 31):
            expected = ((-(-i // 3) - 1) % 4)
            assert cd.owner_coord(i) == expected

    def test_cyclic1_is_round_robin(self):
        cd = Cyclic().bind(Triplet(1, 10), 3)
        assert [cd.owner_coord(i) for i in range(1, 11)] == \
            [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_cyclic_equivalent_to_cyclic1(self):
        a = Cyclic().bind(Triplet(1, 50), 7)
        b = Cyclic(1).bind(Triplet(1, 50), 7)
        for i in range(1, 51):
            assert a.owner_coord(i) == b.owner_coord(i)

    def test_k_must_be_positive(self):
        with pytest.raises(DistributionError):
            Cyclic(0)

    def test_owned_cyclic1_single_triplet(self):
        cd = Cyclic().bind(Triplet(1, 20), 4)
        assert cd.owned(1) == (Triplet(2, 20, 4),)

    def test_owned_blocks_k3(self):
        cd = Cyclic(3).bind(Triplet(1, 20), 3)
        assert cd.owned(0) == (Triplet(1, 3, 1), Triplet(10, 12, 1),
                               Triplet(19, 20, 1))

    def test_owned_partition_total(self):
        cd = Cyclic(4).bind(Triplet(0, 52), 5)
        seen = []
        for p in range(5):
            for t in cd.owned(p):
                seen.extend(t)
        assert sorted(seen) == list(range(0, 53))

    def test_local_extent_formula(self):
        cd = Cyclic(4).bind(Triplet(0, 52), 5)
        for p in range(5):
            assert cd.local_extent(p) == sum(
                len(t) for t in cd.owned(p))

    def test_local_index_packing(self):
        cd = Cyclic(3).bind(Triplet(1, 30), 4)
        # local indices on each coord must be 0..extent-1, in global order
        for p in range(4):
            locals_ = [cd.local_index(i)
                       for t in cd.owned(p) for i in t]
            assert locals_ == list(range(cd.local_extent(p)))

    def test_global_local_roundtrip(self):
        cd = Cyclic(5).bind(Triplet(2, 47), 3)
        for p in range(3):
            for t in cd.owned(p):
                for i in t:
                    assert cd.global_index(p, cd.local_index(i)) == i

    def test_vectorized_matches_scalar(self):
        cd = Cyclic(3).bind(Triplet(0, 100), 7)
        vals = np.arange(0, 101)
        np.testing.assert_array_equal(
            cd.owner_coord_array(vals),
            [cd.owner_coord(int(v)) for v in vals])

    def test_nonunit_lower_bound(self):
        cd = Cyclic(2).bind(Triplet(0, 9), 2)
        assert [cd.owner_coord(i) for i in range(0, 10)] == \
            [0, 0, 1, 1, 0, 0, 1, 1, 0, 0]

    def test_neighbour_separation_cyclic1(self):
        # §8.1.1: under CYCLIC every pair of adjacent indices lands on
        # different processors (NP > 1)
        cd = Cyclic().bind(Triplet(0, 99), 4)
        assert all(cd.owner_coord(i) != cd.owner_coord(i + 1)
                   for i in range(0, 99))
