"""Unit tests for the directive lexer and parser (S7)."""

import pytest

from repro.align.ast import BinOp, Call, Const, Name
from repro.directives import nodes as N
from repro.directives.lexer import Lexer, TokenKind as K
from repro.directives.parser import parse_program
from repro.errors import DirectiveError


class TestLexer:
    def test_directive_sentinel(self):
        lines = Lexer("!HPF$ PROCESSORS PR(32)").logical_lines()
        assert len(lines) == 1 and lines[0].is_directive

    def test_comments_and_blanks_skipped(self):
        src = "\n! a comment\n\n   REAL A(10)\n"
        lines = Lexer(src).logical_lines()
        assert len(lines) == 1 and not lines[0].is_directive

    def test_trailing_comment_stripped(self):
        lines = Lexer("REAL A(10) ! extent ten").logical_lines()
        kinds = [t.kind for t in lines[0].tokens]
        assert K.EOL is kinds[-1]
        assert sum(k is K.IDENT for k in kinds) == 2

    def test_case_insensitive_idents(self):
        lines = Lexer("real a(10)").logical_lines()
        assert lines[0].tokens[0].text == "REAL"

    def test_continuation(self):
        src = "!HPF$ DISTRIBUTE (BLOCK, &\n!HPF$&  CYCLIC) :: A\n"
        lines = Lexer(src).logical_lines()
        assert len(lines) == 1
        assert "CYCLIC" in [t.text for t in lines[0].tokens]

    def test_dangling_continuation(self):
        with pytest.raises(DirectiveError):
            Lexer("REAL A(10), &").logical_lines()

    def test_dcolon_token(self):
        lines = Lexer("!HPF$ DYNAMIC :: B").logical_lines()
        assert any(t.kind is K.DCOLON for t in lines[0].tokens)

    def test_unexpected_character(self):
        with pytest.raises(DirectiveError):
            Lexer("REAL A[10]").logical_lines()

    def test_line_numbers(self):
        src = "REAL A(2)\n\nREAL B(3)\n"
        lines = Lexer(src).logical_lines()
        assert [ln.number for ln in lines] == [1, 3]


class TestParserDeclarations:
    def test_simple_decl(self):
        (node,) = parse_program("REAL U(0:N, 1:N)")
        assert isinstance(node, N.DeclNode)
        assert node.entities == (("U", node.entities[0][1]),)
        lo, up = node.entities[0][1][0].lower, node.entities[0][1][0].upper
        assert lo == Const(0) and up == Name("N")

    def test_multi_entity_decl(self):
        (node,) = parse_program("REAL U(0:N,1:N), V(1:N,0:N), P(1:N,1:N)")
        assert [e[0] for e in node.entities] == ["U", "V", "P"]

    def test_allocatable_decl(self):
        (node,) = parse_program("REAL,ALLOCATABLE(:,:) :: A,B")
        assert node.allocatable
        assert len(node.attr_dims) == 2
        assert all(isinstance(d, N.DeferredDim) for d in node.attr_dims)

    def test_integer_decl(self):
        (node,) = parse_program("INTEGER G(1:7)")
        assert node.type_name == "INTEGER"

    def test_parameter(self):
        (node,) = parse_program("PARAMETER (NOP = 2*4)")
        assert isinstance(node, N.ParameterNode)
        assert node.name == "NOP"
        assert node.value == BinOp("*", Const(2), Const(4))

    def test_read(self):
        (node,) = parse_program("READ 6,M,N")
        assert isinstance(node, N.ReadNode)
        assert node.unit == 6 and node.names == ("M", "N")

    def test_allocate(self):
        (node,) = parse_program("ALLOCATE(A(N*M,N*M))")
        assert isinstance(node, N.AllocateNode)
        name, dims = node.allocations[0]
        assert name == "A" and len(dims) == 2

    def test_allocate_multiple(self):
        (node,) = parse_program("ALLOCATE(C(10000), D(10000))")
        assert [a[0] for a in node.allocations] == ["C", "D"]

    def test_deallocate(self):
        (node,) = parse_program("DEALLOCATE(B)")
        assert node.names == ("B",)


class TestParserDirectives:
    def test_processors(self):
        (node,) = parse_program("!HPF$ PROCESSORS PR(32)")
        assert isinstance(node, N.ProcessorsNode)
        assert node.entries[0][0] == "PR"

    def test_scalar_processors(self):
        (node,) = parse_program("!HPF$ PROCESSORS CTRL")
        assert node.entries[0][1] is None

    def test_template(self):
        (node,) = parse_program("!HPF$ TEMPLATE T(0:2*N,0:2*N)")
        assert isinstance(node, N.TemplateNode)
        assert node.name == "T" and len(node.dims) == 2

    def test_distribute_simple(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE A(BLOCK)")
        d = node.distributees[0]
        assert d.name == "A" and d.formats[0].kind == "BLOCK"
        assert node.target is None and not node.redistribute

    def test_distribute_with_section_target(self):
        (node,) = parse_program(
            "!HPF$ DISTRIBUTE B(CYCLIC) TO Q(1:NOP:2)")
        assert node.target.name == "Q"
        sub = node.target.subscripts[0]
        assert sub.kind == "triplet"
        assert sub.stride == Const(2)

    def test_distribute_general_block(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE C(GENERAL_BLOCK(S))")
        f = node.distributees[0].formats[0]
        assert f.kind == "GENERAL_BLOCK" and f.arg == "S"

    def test_distribute_shared_form(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE (BLOCK, :) :: E,F")
        assert [d.name for d in node.distributees] == ["E", "F"]
        kinds = [f.kind for f in node.distributees[0].formats]
        assert kinds == ["BLOCK", ":"]

    def test_distribute_cyclic_arg(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE A(CYCLIC(3))")
        assert node.distributees[0].formats[0].arg == Const(3)

    def test_distribute_star_inherit(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE A *")
        d = node.distributees[0]
        assert d.star and d.formats is None

    def test_distribute_star_match(self):
        (node,) = parse_program("!HPF$ DISTRIBUTE X *(CYCLIC(3))")
        d = node.distributees[0]
        assert d.star and d.formats[0].kind == "CYCLIC"

    def test_redistribute(self):
        (node,) = parse_program("!HPF$ REDISTRIBUTE C(CYCLIC) TO PR")
        assert node.redistribute

    def test_unknown_format_rejected(self):
        with pytest.raises(DirectiveError):
            parse_program("!HPF$ DISTRIBUTE A(BLOK)")

    def test_align_simple(self):
        (node,) = parse_program("!HPF$ ALIGN P(I,J) WITH T(2*I-1,2*J-1)")
        assert isinstance(node, N.AlignNode)
        assert node.alignee == "P" and node.base == "T"
        assert [a.kind for a in node.axes] == ["dummy", "dummy"]
        assert node.subscripts[0].kind == "expr"

    def test_align_colon_star(self):
        (node,) = parse_program("!HPF$ ALIGN A(:) WITH D(:,*)")
        assert node.axes[0].kind == "colon"
        assert node.subscripts[0].kind == "triplet"
        assert node.subscripts[1].kind == "star"

    def test_align_collapse(self):
        (node,) = parse_program("!HPF$ ALIGN B(:,*) WITH E(:)")
        assert [a.kind for a in node.axes] == ["colon", "star"]

    def test_realign_dcolon_triplets(self):
        # the §6 example: REALIGN B(:,:) WITH A(M::M,1::M)
        (node,) = parse_program("!HPF$ REALIGN B(:,:) WITH A(M::M,1::M)")
        assert node.realign
        s0 = node.subscripts[0]
        assert s0.kind == "triplet"
        assert s0.lower == Name("M") and s0.upper is None
        assert s0.stride == Name("M")

    def test_dynamic(self):
        (node,) = parse_program("!HPF$ DYNAMIC B,C")
        assert node.names == ("B", "C")

    def test_unknown_directive(self):
        with pytest.raises(DirectiveError):
            parse_program("!HPF$ FROBNICATE A")


class TestParserStatements:
    def test_staggered_assignment(self):
        (node,) = parse_program(
            "P = U(0:N-1,:) + U(1:N,:) + V(:,0:N-1) + V(:,1:N)")
        assert isinstance(node, N.AssignNode)
        assert node.lhs.name == "P" and node.lhs.subscripts is None
        # rhs is a left-nested sum of four refs
        refs = []

        def walk(e):
            if isinstance(e, N.RefNode):
                refs.append(e.name)
            elif isinstance(e, N.BinNode):
                walk(e.left)
                walk(e.right)

        walk(node.rhs)
        assert refs == ["U", "U", "V", "V"]

    def test_precedence(self):
        (node,) = parse_program("X = A + B * C")
        assert isinstance(node.rhs, N.BinNode) and node.rhs.op == "+"
        assert isinstance(node.rhs.right, N.BinNode)
        assert node.rhs.right.op == "*"

    def test_parenthesized(self):
        (node,) = parse_program("X = (A + B) * C")
        assert node.rhs.op == "*"

    def test_scalar_literal(self):
        (node,) = parse_program("X = A * 4")
        assert isinstance(node.rhs.right, N.NumNode)

    def test_unary_minus(self):
        (node,) = parse_program("X = -A")
        assert isinstance(node.rhs, N.BinNode) and node.rhs.op == "-"

    def test_intrinsics_in_align(self):
        (node,) = parse_program(
            "!HPF$ ALIGN A(I) WITH B(MAX(1, I-1))")
        expr = node.subscripts[0].expr
        assert isinstance(expr, Call) and expr.fn == "MAX"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(DirectiveError):
            parse_program("!HPF$ DYNAMIC B C")
