"""Property-based tests: forest invariants and template-free equivalence.

* random sequences of ALIGN / REALIGN / REDISTRIBUTE / remove operations
  never produce an alignment tree of height > 1 (§2.4 invariant);
* randomized template-based specifications are always reproducible
  without templates via the witness strategy (the paper's core claim,
  E12's property form).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.ast import Dummy
from repro.align.forest import AlignmentForest
from repro.align.function import identity_alignment
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.errors import MappingError
from repro.fortran.domain import IndexDomain
from repro.templates.equivalence import verify_equivalence
from repro.templates.model import TemplateDataSpace

_NODE_NAMES = ["A", "B", "C", "D", "E"]


def _fn():
    return identity_alignment(IndexDomain.standard(4))


@given(st.lists(st.tuples(
    st.sampled_from(["align", "realign", "redistribute", "remove",
                     "re-add"]),
    st.sampled_from(_NODE_NAMES),
    st.sampled_from(_NODE_NAMES)), max_size=40))
@settings(max_examples=200)
def test_forest_invariants_under_random_surgery(ops):
    forest = AlignmentForest()
    for n in _NODE_NAMES:
        forest.add(n)
    for op, x, y in ops:
        try:
            if op == "align":
                forest.align(x, y, _fn())
            elif op == "realign":
                if x in forest and y in forest:
                    forest.realign(x, y, _fn())
            elif op == "redistribute":
                if x in forest:
                    forest.disconnect_for_redistribute(x)
            elif op == "remove":
                if x in forest:
                    forest.remove(x)
            else:   # re-add after removal
                if x not in forest:
                    forest.add(x)
        except MappingError:
            pass    # rejected operations must leave the forest intact
        forest.validate()
        # height <= 1 is implied by validate(); double-check directly
        for node in forest.nodes:
            parent = forest.parent_of(node)
            if parent is not None:
                assert forest.parent_of(parent) is None


@st.composite
def template_cases(draw):
    tn = draw(st.integers(30, 120))
    a = draw(st.integers(1, 3))
    slack = draw(st.integers(4, 12))
    n = max((tn - slack) // a, 1)
    b = draw(st.integers(1, max(tn - a * n, 1)))
    kind = draw(st.sampled_from(["block", "vienna", "cyclic", "cyclic_k"]))
    np_ = draw(st.integers(2, 6))
    if kind == "block":
        fmt = Block()
    elif kind == "vienna":
        fmt = Block(variant=BlockVariant.VIENNA)
    elif kind == "cyclic":
        fmt = Cyclic()
    else:
        fmt = Cyclic(draw(st.integers(2, 5)))
    return tn, n, a, b, fmt, np_


@given(template_cases())
@settings(max_examples=60, deadline=None)
def test_witness_equivalence_property(case):
    """The paper's core claim as a property: any single-array affine
    template alignment + distribution is reproducible exactly without
    the template."""
    tn, n, a, b, fmt, np_ = case
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.template("T", tn)
    tds.declare("X", n)
    spec = AlignSpec("X", [AxisDummy("I")], "T",
                     [BaseExpr(a * Dummy("I") + b)])
    tds.align(spec)
    tds.distribute("T", [fmt], to="PR")
    assert verify_equivalence(tds, "T", [spec]) == {"X": True}


@given(template_cases(), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_chain_flattening_property(case, depth):
    """A depth-d chain of shift alignments equals one composed height-1
    alignment — the model simplification the paper makes is lossless."""
    tn, n, a, b, fmt, np_ = case
    if a != 1:
        a = 1          # keep chains in-range: pure shifts
    tds = TemplateDataSpace(np_)
    tds.processors("PR", np_)
    tds.declare("A0", tn)
    tds.distribute("A0", [fmt], to="PR")
    prev = "A0"
    total_shift = 0
    for d in range(1, depth + 1):
        name = f"A{d}"
        extent = tn - d
        tds.declare(name, extent)
        tds.align(AlignSpec(name, [AxisDummy("I")], prev,
                            [BaseExpr(Dummy("I") + 1)]))
        prev = name
        total_shift += 1
    leaf = prev
    from repro.core.dataspace import DataSpace
    ds = DataSpace(np_, ap=None)
    ds.processors("PR", np_)
    ds.declare("BASE", tn)
    ds.distribute("BASE", [fmt], to="PR")
    ds.declare("LEAF", tn - depth)
    ds.align(AlignSpec("LEAF", [AxisDummy("I")], "BASE",
                       [BaseExpr(Dummy("I") + total_shift)]))
    for i in range(1, tn - depth + 1, max((tn - depth) // 7, 1)):
        assert tds.owners(leaf, (i,)) == ds.owners("LEAF", (i,))
