"""Unit tests for the execution engine: expressions, assignments,
sequential reference, owner-computes helpers, executor and remap pricing."""

import numpy as np
import pytest

from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.assignment import Assignment
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef, BinExpr, ScalarLit
from repro.engine.owner_computes import (
    local_iteration_counts,
    section_owner_map,
    work_vector,
)
from repro.engine.redistribute import charge_remap, price_remap
from repro.engine.reference import execute_sequential
from repro.errors import ConformanceError, MachineError
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


class TestExpressions:
    def test_ref_shape_and_eval(self, blocked_pair):
        blocked_pair.arrays["A"].fill_sequence()
        ref = ArrayRef("A", (Triplet(1, 10, 3),))
        assert ref.shape(blocked_pair) == (4,)
        np.testing.assert_array_equal(ref.eval_global(blocked_pair),
                                      [0, 3, 6, 9])

    def test_operator_sugar_and_eval(self, blocked_pair):
        blocked_pair.arrays["A"].fill_sequence()
        blocked_pair.arrays["B"].fill_sequence()
        expr = 2 * ArrayRef("A") - ArrayRef("B") + 1
        got = expr.eval_global(blocked_pair)
        expected = 2 * np.arange(64) - np.arange(64) + 1
        np.testing.assert_array_equal(got, expected)

    def test_division(self, blocked_pair):
        blocked_pair.arrays["A"].data[:] = 10.0
        expr = ArrayRef("A") / 4
        assert expr.eval_global(blocked_pair)[0] == 2.5

    def test_shape_conformance_error(self, blocked_pair):
        expr = ArrayRef("A", (Triplet(1, 10),)) + \
            ArrayRef("B", (Triplet(1, 9),))
        with pytest.raises(ConformanceError):
            expr.shape(blocked_pair)

    def test_scalar_broadcast(self, blocked_pair):
        expr = ArrayRef("A") * ScalarLit(0.0) + 5
        assert expr.shape(blocked_pair) == (64,)

    def test_refs_enumeration(self):
        e = ArrayRef("A") + ArrayRef("B") * ArrayRef("C")
        assert [r.name for r in e.refs()] == ["A", "B", "C"]

    def test_bad_operator(self):
        with pytest.raises(ConformanceError):
            BinExpr("%", ScalarLit(1), ScalarLit(2))


class TestSequentialReference:
    def test_simple_copy(self, blocked_pair):
        ds = blocked_pair
        ds.arrays["A"].fill_sequence()
        stmt = Assignment(ArrayRef("B"), ArrayRef("A"))
        execute_sequential(ds, stmt)
        np.testing.assert_array_equal(ds.arrays["B"].data,
                                      ds.arrays["A"].data)

    def test_section_assignment(self, blocked_pair):
        ds = blocked_pair
        ds.arrays["A"].fill_sequence()
        stmt = Assignment(ArrayRef("B", (Triplet(1, 32),)),
                          ArrayRef("A", (Triplet(33, 64),)))
        execute_sequential(ds, stmt)
        np.testing.assert_array_equal(ds.arrays["B"].data[:32],
                                      np.arange(32, 64))

    def test_overlapping_lhs_rhs_fortran_semantics(self, blocked_pair):
        # B(2:64) = B(1:63): RHS fully evaluated before assignment
        ds = blocked_pair
        ds.arrays["B"].fill_sequence()
        stmt = Assignment(ArrayRef("B", (Triplet(2, 64),)),
                          ArrayRef("B", (Triplet(1, 63),)))
        execute_sequential(ds, stmt)
        np.testing.assert_array_equal(ds.arrays["B"].data,
                                      np.concatenate(([0], np.arange(63))))

    def test_scalar_rhs_broadcast(self, blocked_pair):
        stmt = Assignment(ArrayRef("B"), ScalarLit(7.0))
        execute_sequential(blocked_pair, stmt)
        assert (blocked_pair.arrays["B"].data == 7.0).all()


class TestOwnerComputes:
    def test_section_owner_map(self, cyclic_pair):
        ds = cyclic_pair
        dist = ds.distribution_of("B")
        sec = ds.section("B", Triplet(1, 59, 2))
        omap = section_owner_map(dist, sec)
        expected = [dist.primary_owner((i,)) for i in range(1, 60, 2)]
        np.testing.assert_array_equal(omap, expected)

    def test_local_iteration_counts(self):
        omap = np.array([0, 0, 1, 3, 3, 3])
        np.testing.assert_array_equal(
            local_iteration_counts(omap, 4), [2, 1, 0, 3])

    def test_work_vector_scaling(self):
        omap = np.array([0, 1])
        np.testing.assert_array_equal(
            work_vector(omap, 2, ops_per_element=4), [4, 4])


class TestExecutor:
    def test_identity_copy_no_comm(self, blocked_pair, machine8):
        ds = blocked_pair
        ex = SimulatedExecutor(ds, machine8)
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        assert rep.total_words == 0 and rep.locality == 1.0

    def test_block_to_cyclic_full_exchange(self, cyclic_pair, machine8):
        ds = cyclic_pair
        ex = SimulatedExecutor(ds, machine8)
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        assert rep.total_words > 0
        assert machine8.stats.total_words == rep.total_words
        # every element is written: work totals the iteration count
        assert rep.work.sum() == 60

    def test_shift_stencil_neighbour_traffic(self, blocked_pair,
                                             machine8):
        ds = blocked_pair
        ex = SimulatedExecutor(ds, machine8)
        stmt = Assignment(ArrayRef("B", (Triplet(1, 63),)),
                          ArrayRef("A", (Triplet(2, 64),)))
        rep = ex.execute(stmt)
        # one boundary element from each right neighbour: 7 messages
        assert rep.total_messages == 7
        assert rep.total_words == 7

    def test_strategies_agree(self, cyclic_pair):
        ds = cyclic_pair
        stmt = Assignment(ArrayRef("B", (Triplet(1, 59, 2),)),
                          ArrayRef("A", (Triplet(2, 60, 2),)))
        reports = {}
        for strategy in ("oracle", "analytic"):
            m = DistributedMachine(MachineConfig(8))
            ex = SimulatedExecutor(ds, m, strategy=strategy)
            reports[strategy] = ex.execute(stmt)
        np.testing.assert_array_equal(reports["oracle"].words,
                                      reports["analytic"].words)

    def test_numerics_match_reference(self, cyclic_pair, machine8):
        ds = cyclic_pair
        ds.arrays["A"].fill_sequence()
        ex = SimulatedExecutor(ds, machine8)
        ex.execute(Assignment(ArrayRef("B"),
                              2 * ArrayRef("A") + 1))
        np.testing.assert_array_equal(ds.arrays["B"].data,
                                      2 * np.arange(60) + 1)

    def test_machine_too_small_rejected(self, blocked_pair):
        m = DistributedMachine(MachineConfig(4))
        with pytest.raises(ValueError):
            SimulatedExecutor(blocked_pair, m)

    def test_report_summary(self, blocked_pair, machine8):
        ex = SimulatedExecutor(blocked_pair, machine8)
        rep = ex.execute(Assignment(ArrayRef("B"), ArrayRef("A")))
        assert "locality" in rep.summary()


class TestRemapPricing:
    def test_price_block_to_cyclic(self, ds8):
        ds8.declare("A", 64, dynamic=True)
        ds8.distribute("A", [Block()], to="PR")
        event = ds8.redistribute("A", [Cyclic()], to="PR")
        matrix, moved = price_remap(event, 8)
        # elements staying put: those with (i-1)//8 == (i-1)%8
        stay = sum(1 for i in range(64) if i // 8 == i % 8)
        assert moved == 64 - stay
        assert matrix.sum() == moved
        assert matrix.trace() == 0

    def test_fresh_distribution_is_free(self, ds8):
        ds8.declare("A", 64)
        ds8.distribute("A", [Block()], to="PR")
        event = ds8.remap_events[-1]
        assert event.old is None
        matrix, moved = price_remap(event, 8)
        assert moved == 0 and matrix.sum() == 0

    def test_charge_remap_hits_ledger(self, ds8, machine8):
        ds8.declare("A", 64, dynamic=True)
        ds8.distribute("A", [Block()], to="PR")
        event = ds8.redistribute("A", [Cyclic()], to="PR")
        matrix, moved = charge_remap(machine8, event)
        assert machine8.stats.total_words == moved

    def test_domain_change_rejected(self, ds8):
        from repro.core.dataspace import RemapEvent
        ds8.declare("A", 8)
        ds8.declare("B", 9)
        ds8.distribute("A", [Block()], to="PR")
        ds8.distribute("B", [Block()], to="PR")
        bad = RemapEvent("A", ds8.distribution_of("A"),
                         ds8.distribution_of("B"), "bad")
        with pytest.raises(MachineError):
            price_remap(bad, 8)

    def test_replication_pricing(self, ds8):
        # realigning to a replicating alignment broadcasts copies
        from repro.align.ast import Dummy
        from repro.align.spec import (AlignSpec, AxisDummy, BaseExpr,
                                      BaseStar)
        ds8.declare("D", 16, 8)
        ds8.declare("A", 16, dynamic=True)
        ds8.distribute("D", [Block(), Block()], to=None)
        ds8.distribute("A", [Block()], to="PR")
        event = ds8.realign(AlignSpec(
            "A", [AxisDummy("I")], "D",
            [BaseExpr(Dummy("I")), BaseStar()]))
        matrix, moved = price_remap(event, 8)
        assert moved > 0
        # every element now has more than one owner somewhere
        assert ds8.distribution_of("A").is_replicated
