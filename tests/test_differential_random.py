"""Randomized differential testing of the execution engines.

A seeded generator draws ~50 programs — random shapes, BLOCK /
BLOCK(m) / CYCLIC / CYCLIC(k) / GENERAL_BLOCK / REPLICATED layouts,
random offset alignments, random RHS sections and expression shapes —
and each case is executed six ways from identical initial data:

* the sequential reference semantics (ground truth);
* :class:`SimulatedExecutor` (counting matrices, lowered time model);
* :class:`MessageAccurateExecutor` (explicit payload routing);
* :class:`SpmdExecutor` with fused per-peer transfer plans (one phase
  barrier per fusion window, zero-copy face windows where legal);
* :class:`SpmdExecutor` unfused (the per-statement two-barrier
  baseline);
* :class:`SpmdExecutor` through the worker-resident loop-replay
  protocol (:meth:`~repro.engine.spmd.SpmdExecutor.execute_loop` —
  preloaded window plans, one ``loop`` dispatch, coordinator
  accounting running behind the workers).

The differential assertions: payload-routed and SPMD-computed numerics
equal the sequential reference bit-for-bit; the SPMD backend's reported
words matrices, per-processor machine counters, modeled elapsed time
and pattern attribution equal the counting executor's *bit-identically
in every case* (both charge the same compiled counting schedules); and
the routed per-pair words matrices equal the counting executor's for
non-replicated operands (replicated operands are counted as locally
satisfied by the counting oracle but routed from the primary copy, the
payload executor's documented semantics).  This is the harness proving
pattern lowering and the SPMD backend preserve both numerics and
message-count semantics.

The same 50 seeds additionally run 6-way through the optimizer
pipeline: reference == simulated == SPMD-unfused == SPMD-fused ==
SPMD-replay at ``-O0`` == ``-O2`` —
numerics and per-statement report attribution are opt-level invariant,
the ``-O2`` machine never moves *more* than ``-O0``, and the simulated
and SPMD machines stay bit-identical to each other at ``-O2`` (both
accountants make the same decisions over the same statement stream).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.distributions.replicated import ReplicatedFormat
from repro.engine.assignment import Assignment
from repro.engine.distexec import MessageAccurateExecutor
from repro.engine.executor import SimulatedExecutor
from repro.engine.spmd import SpmdExecutor
from repro.engine.expr import ArrayRef
from repro.engine.reference import execute_sequential
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine

N_CASES = 50
_KINDS = ("block", "block_m", "cyclic", "cyclic_k", "gblock", "replicated")


# ----------------------------------------------------------------------
# Case generation (pure data, so one seed always builds one program)
# ----------------------------------------------------------------------
def _format_spec(rng: np.random.Generator, n: int, p: int) -> tuple:
    kind = _KINDS[int(rng.integers(0, len(_KINDS)))]
    if kind == "block_m":
        return ("block_m", int(-(-n // p) + rng.integers(0, 3)))
    if kind == "cyclic_k":
        return ("cyclic_k", int(rng.integers(2, 6)))
    if kind == "gblock":
        sizes = rng.multinomial(n, np.full(p, 1.0 / p))
        return ("gblock", tuple(int(s) for s in sizes))
    return (kind, None)


def _case(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    p = int(rng.choice([4, 5, 8]))
    n = int(rng.integers(24, 97))
    arrays = [("A", n, _format_spec(rng, n, p)),
              ("B", n, _format_spec(rng, n, p))]
    if rng.random() < 0.6:
        n_c = n - 4
        if rng.random() < 0.5:
            # C rides A's mapping through an offset alignment
            arrays.append(("C", n_c, ("aligned", int(rng.integers(0, 4)))))
        else:
            arrays.append(("C", n_c, _format_spec(rng, n_c, p)))
    names = [a[0] for a in arrays]
    sizes = {a[0]: a[1] for a in arrays}
    lhs_name = names[int(rng.integers(0, len(names)))]
    n_refs = int(rng.integers(1, 3))
    ref_names = [names[int(rng.integers(0, len(names)))]
                 for _ in range(n_refs)]
    min_size = min(sizes[nm] for nm in [lhs_name] + ref_names)
    extent = int(rng.integers(1, max((min_size - 1) // 3 + 1, 2)))

    def triplet_for(nm: str) -> tuple[int, int, int]:
        stride = int(rng.integers(1, 4))
        lo = int(rng.integers(1, sizes[nm] - (extent - 1) * stride + 1))
        return (lo, lo + (extent - 1) * stride, stride)

    return {
        "p": p, "n": n, "arrays": arrays, "data_seed": seed + 10_000,
        "lhs": (lhs_name, triplet_for(lhs_name)),
        "refs": [(nm, triplet_for(nm)) for nm in ref_names],
        "shape": int(rng.integers(0, 2)),
    }


def _build_format(spec: tuple):
    kind, arg = spec
    if kind == "block":
        return Block()
    if kind == "block_m":
        return Block(size=arg)
    if kind == "cyclic":
        return Cyclic()
    if kind == "cyclic_k":
        return Cyclic(arg)
    if kind == "gblock":
        return GeneralBlock.from_sizes(list(arg))
    return ReplicatedFormat()


def _materialize(case: dict) -> DataSpace:
    ds = DataSpace(case["p"])
    ds.processors("PR", case["p"])
    rng = np.random.default_rng(case["data_seed"])
    for name, size, spec in case["arrays"]:
        ds.declare(name, size)
        if spec[0] == "aligned":
            ds.align(AlignSpec(name, [AxisDummy("I")], "A",
                               [BaseExpr(Dummy("I") + spec[1])]))
        else:
            ds.distribute(name, [_build_format(spec)], to="PR")
        ds.arrays[name].data[:] = rng.uniform(-8.0, 8.0, size=size)
    return ds


def _statement(case: dict) -> Assignment:
    lhs_name, lhs_t = case["lhs"]
    refs = [ArrayRef(nm, (Triplet(*t),)) for nm, t in case["refs"]]
    if len(refs) == 1:
        rhs = refs[0] if case["shape"] == 0 else refs[0] * 2.0 + 1.0
    else:
        rhs = (refs[0] + refs[1] if case["shape"] == 0
               else refs[0] * 2.0 - refs[1])
    return Assignment(ArrayRef(lhs_name, (Triplet(*lhs_t),)), rhs)


# ----------------------------------------------------------------------
# The differential harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(N_CASES))
def test_differential_random_program(seed):
    case = _case(seed)
    stmt = _statement(case)
    p = case["p"]

    ds_ref = _materialize(case)
    ds_sim = _materialize(case)
    ds_msg = _materialize(case)
    ds_spmd = _materialize(case)
    ds_spmd_uf = _materialize(case)

    execute_sequential(ds_ref, stmt)

    machine_sim = DistributedMachine(MachineConfig(p))
    sim_report = SimulatedExecutor(ds_sim, machine_sim).execute(stmt)

    machine_msg = DistributedMachine(MachineConfig(p))
    msg_report = MessageAccurateExecutor(ds_msg, machine_msg).execute(stmt)

    machine_spmd = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd, machine_spmd, mode="thread") as spmd:
        spmd_report = spmd.execute(stmt)

    machine_spmd_uf = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd_uf, machine_spmd_uf, mode="thread",
                      fused=False) as spmd_uf:
        spmd_uf_report = spmd_uf.execute(stmt)

    ds_spmd_rp = _materialize(case)
    machine_spmd_rp = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd_rp, machine_spmd_rp, mode="thread") as spmd_rp:
        (spmd_rp_report,) = spmd_rp.execute_loop([stmt], 1)
        assert spmd_rp.replay_count == 1
        assert spmd_rp.dispatch_count == 0

    # fused = one phase barrier per window; unfused = the two-barrier
    # per-statement baseline; replay = two phase crossings per window
    # per trip (compute-ready + post-write)
    assert spmd_report.barrier_count == 1
    assert spmd_uf_report.barrier_count == 2
    assert spmd_rp_report.barrier_count == 2

    # numerics: payload-routed and SPMD-parallel execution (both fusion
    # modes) == sequential reference, for every array (untouched arrays
    # stay untouched)
    for name in ds_ref.arrays:
        np.testing.assert_array_equal(
            ds_msg.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: routed numerics diverge on {name}")
        np.testing.assert_array_equal(
            ds_sim.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: simulated numerics diverge on {name}")
        np.testing.assert_array_equal(
            ds_spmd.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: fused SPMD numerics diverge on {name}")
        np.testing.assert_array_equal(
            ds_spmd_uf.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: unfused SPMD numerics diverge "
                    f"on {name}")
        np.testing.assert_array_equal(
            ds_spmd_rp.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: replayed SPMD numerics diverge "
                    f"on {name}")

    # the SPMD backend charges the same compiled counting schedules as
    # the simulator: its reported matrices, machine counters, modeled
    # time and pattern attribution are bit-identical in EVERY case
    # (replicated operands included)
    np.testing.assert_array_equal(
        spmd_report.words, sim_report.words,
        err_msg=f"seed {seed}: SPMD words matrix diverges from simulated")
    np.testing.assert_array_equal(machine_spmd.stats.words_sent,
                                  machine_sim.stats.words_sent)
    np.testing.assert_array_equal(machine_spmd.stats.words_recv,
                                  machine_sim.stats.words_recv)
    np.testing.assert_array_equal(machine_spmd.stats.msgs_sent,
                                  machine_sim.stats.msgs_sent)
    assert machine_spmd.elapsed == machine_sim.elapsed
    assert spmd_report.patterns == sim_report.patterns
    assert machine_spmd.stats.pattern_words == \
        machine_sim.stats.pattern_words

    # the unfused baseline charges identically too — fusion is a pure
    # execution-strategy change, invisible to the accounting seam
    np.testing.assert_array_equal(
        spmd_uf_report.words, sim_report.words,
        err_msg=f"seed {seed}: unfused SPMD words diverge from simulated")
    np.testing.assert_array_equal(machine_spmd_uf.stats.words_sent,
                                  machine_sim.stats.words_sent)
    np.testing.assert_array_equal(machine_spmd_uf.stats.msgs_sent,
                                  machine_sim.stats.msgs_sent)
    assert machine_spmd_uf.elapsed == machine_sim.elapsed
    assert spmd_uf_report.patterns == sim_report.patterns

    # the replay path charges the same trip-invariant counting schedule
    # from the coordinator while the workers run ahead — accounting is
    # bit-identical to the simulator there too
    np.testing.assert_array_equal(
        spmd_rp_report.words, sim_report.words,
        err_msg=f"seed {seed}: replayed SPMD words diverge from simulated")
    np.testing.assert_array_equal(machine_spmd_rp.stats.words_sent,
                                  machine_sim.stats.words_sent)
    np.testing.assert_array_equal(machine_spmd_rp.stats.msgs_sent,
                                  machine_sim.stats.msgs_sent)
    assert machine_spmd_rp.elapsed == machine_sim.elapsed
    assert spmd_rp_report.patterns == sim_report.patterns

    # message counts: routed payload matrix == counting matrix, except
    # for replicated operands (counted local, routed from the primary)
    replicated = any(ds_sim.distribution_of(nm).is_replicated
                     for nm, _ in case["refs"])
    if not replicated:
        routed = np.zeros((p, p), dtype=np.int64)
        for msg in msg_report.routed:
            routed[msg.src, msg.dst] += msg.words
        np.testing.assert_array_equal(
            routed, sim_report.words,
            err_msg=f"seed {seed}: words matrices diverge")
        np.testing.assert_array_equal(machine_msg.stats.words_sent,
                                      machine_sim.stats.words_sent)
        np.testing.assert_array_equal(machine_msg.stats.words_recv,
                                      machine_sim.stats.words_recv)

    # the lowered time model never charges more than point-to-point
    # (per deposited reference — each ref is one message batch)
    from repro.engine.lowering import p2p_time
    comm_elapsed = sum(machine_sim.stats.pattern_time.values())
    p2p_total = sum(p2p_time(machine_sim.config, matrix)
                    for _, matrix, _, _ in sim_report.per_ref)
    assert comm_elapsed <= p2p_total + 1e-9

    # ------------------------------------------------------------------
    # 6-way: the same case through the optimizer pipeline at -O2, on
    # the simulated backend, both SPMD fusion modes, and the SPMD
    # loop-replay path
    # ------------------------------------------------------------------
    from repro.engine.passes import OptimizingAccountant

    ds_o2 = _materialize(case)
    machine_o2 = DistributedMachine(MachineConfig(p))
    ex_o2 = SimulatedExecutor(ds_o2, machine_o2)
    ex_o2.accountant = OptimizingAccountant(ds_o2, machine_o2, 2)
    o2_report = ex_o2.execute(stmt)
    ex_o2.accountant.flush()

    ds_spmd2 = _materialize(case)
    machine_spmd2 = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd2, machine_spmd2, mode="thread") as spmd2:
        spmd2.accountant = OptimizingAccountant(ds_spmd2, machine_spmd2, 2)
        spmd2_report = spmd2.execute(stmt)
        spmd2.accountant.flush()

    ds_spmd2_uf = _materialize(case)
    machine_spmd2_uf = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd2_uf, machine_spmd2_uf, mode="thread",
                      fused=False) as spmd2_uf:
        spmd2_uf.accountant = OptimizingAccountant(
            ds_spmd2_uf, machine_spmd2_uf, 2)
        spmd2_uf.execute(stmt)
        spmd2_uf.accountant.flush()

    ds_spmd2_rp = _materialize(case)
    machine_spmd2_rp = DistributedMachine(MachineConfig(p))
    with SpmdExecutor(ds_spmd2_rp, machine_spmd2_rp,
                      mode="thread") as spmd2_rp:
        spmd2_rp.accountant = OptimizingAccountant(
            ds_spmd2_rp, machine_spmd2_rp, 2)
        spmd2_rp.execute_loop([stmt], 1)
        assert spmd2_rp.replay_count == 1
        spmd2_rp.accountant.flush()

    # numerics are opt-level, backend and fusion-mode invariant
    for name in ds_ref.arrays:
        np.testing.assert_array_equal(
            ds_o2.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: -O2 simulated numerics diverge")
        np.testing.assert_array_equal(
            ds_spmd2.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: -O2 fused SPMD numerics diverge")
        np.testing.assert_array_equal(
            ds_spmd2_uf.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: -O2 unfused SPMD numerics diverge")
        np.testing.assert_array_equal(
            ds_spmd2_rp.arrays[name].data, ds_ref.arrays[name].data,
            err_msg=f"seed {seed}: -O2 replayed SPMD numerics diverge")

    # report attribution is opt-level invariant (fusion never loses it)
    np.testing.assert_array_equal(o2_report.words, sim_report.words)
    assert o2_report.words_by_pattern() == sim_report.words_by_pattern()
    assert o2_report.patterns == sim_report.patterns

    # the -O2 machine never moves more than -O0, and the two -O2
    # backends stay bit-identical to each other
    assert machine_o2.stats.total_words <= machine_sim.stats.total_words
    assert machine_o2.stats.total_messages <= \
        machine_sim.stats.total_messages
    np.testing.assert_array_equal(machine_spmd2.stats.words_sent,
                                  machine_o2.stats.words_sent)
    np.testing.assert_array_equal(machine_spmd2.stats.msgs_sent,
                                  machine_o2.stats.msgs_sent)
    assert machine_spmd2.elapsed == machine_o2.elapsed
    assert spmd2_report.words_by_pattern() == o2_report.words_by_pattern()
    assert machine_spmd2.stats.opt_words_saved == \
        machine_o2.stats.opt_words_saved
    np.testing.assert_array_equal(machine_spmd2_uf.stats.words_sent,
                                  machine_o2.stats.words_sent)
    assert machine_spmd2_uf.elapsed == machine_o2.elapsed
    np.testing.assert_array_equal(machine_spmd2_rp.stats.words_sent,
                                  machine_o2.stats.words_sent)
    assert machine_spmd2_rp.elapsed == machine_o2.elapsed
    assert machine_spmd2_rp.stats.opt_words_saved == \
        machine_o2.stats.opt_words_saved


def test_generator_covers_layout_families():
    """The 50 seeds collectively exercise every layout family, the
    alignment path, and both executor-divergence regimes."""
    kinds: set[str] = set()
    replicated_refs = 0
    for seed in range(N_CASES):
        case = _case(seed)
        for _, _, spec in case["arrays"]:
            kinds.add(spec[0])
        ref_specs = {nm: spec for nm, _, spec in case["arrays"]}
        if any(ref_specs[nm][0] == "replicated" for nm, _ in case["refs"]):
            replicated_refs += 1
    assert {"block", "block_m", "cyclic", "cyclic_k", "gblock",
            "replicated", "aligned"} <= kinds
    assert replicated_refs >= 1
    assert replicated_refs < N_CASES // 2   # words compare mostly active


def test_generated_programs_are_deterministic():
    assert _case(7) == _case(7)
    assert _statement(_case(7)) == _statement(_case(7))


# ----------------------------------------------------------------------
# Diagonal-stencil overlap exactness (2-D corner-ghost exchange)
# ----------------------------------------------------------------------
# The 1-D harness above can never produce a diagonal shift vector, so
# the corner-ghost path of ``overlap_plan`` gets its own seeded sweep:
# random 2-D block grids (even and uneven), random stencils with at
# least one diagonal vector (every 5th seed is the full 9-point star),
# each checked against an independent element-wise ghost oracle and
# against the counting executor's per-reference words.

_DIAG_GRIDS = ((2, 2), (2, 3), (3, 2), (2, 4))


def _diag_case(seed: int) -> dict:
    rng = np.random.default_rng(10_000 + seed)
    gr, gc = _DIAG_GRIDS[int(rng.integers(len(_DIAG_GRIDS)))]
    nr = int(rng.integers(12, 25))
    nc = int(rng.integers(12, 25))
    if seed % 5 == 0:
        # the full 9-point star: all eight unit neighbours
        vecs = [(dr, dc) for dr in (-1, 0, 1) for dc in (-1, 0, 1)
                if (dr, dc) != (0, 0)]
    else:
        w = int(rng.integers(1, 3))
        candidates = [(dr, dc) for dr in range(-w, w + 1)
                      for dc in range(-w, w + 1) if (dr, dc) != (0, 0)]
        rng.shuffle(candidates)
        vecs = candidates[:int(rng.integers(2, 6))]
        if not any(dr and dc for dr, dc in vecs):
            diag = [(dr, dc) for dr, dc in candidates if dr and dc]
            vecs.append(diag[0])
    # uneven rows on odd seeds: a random GENERAL_BLOCK split
    if seed % 2:
        cuts = sorted(rng.choice(np.arange(1, nr), size=gr - 1,
                                 replace=False).tolist())
        row_sizes = [b - a for a, b in
                     zip([0, *cuts], [*cuts, nr])]
    else:
        row_sizes = None
    return {"grid": (gr, gc), "n": (nr, nc), "vecs": vecs,
            "row_sizes": row_sizes, "data_seed": int(rng.integers(2**31))}


def _diag_materialize(case: dict) -> DataSpace:
    (gr, gc), (nr, nc) = case["grid"], case["n"]
    ds = DataSpace(gr * gc)
    ds.processors("PR", gr, gc)
    rng = np.random.default_rng(case["data_seed"])
    row_fmt = (GeneralBlock.from_sizes(case["row_sizes"])
               if case["row_sizes"] else Block())
    for name in ("X", "Y"):
        ds.declare(name, nr, nc)
        ds.distribute(name, [row_fmt, Block()], to="PR")
        ds.arrays[name].data[:] = rng.uniform(-8.0, 8.0, size=(nr, nc))
    return ds


def _diag_statement(case: dict) -> Assignment:
    nr, nc = case["n"]
    lo_r = max(0, max(-dr for dr, _ in case["vecs"]))
    hi_r = max(0, max(dr for dr, _ in case["vecs"]))
    lo_c = max(0, max(-dc for _, dc in case["vecs"]))
    hi_c = max(0, max(dc for _, dc in case["vecs"]))
    lt = (Triplet(1 + lo_r, nr - hi_r), Triplet(1 + lo_c, nc - hi_c))
    refs = [ArrayRef("Y", (Triplet(lt[0].lower + dr, lt[0].upper + dr),
                           Triplet(lt[1].lower + dc, lt[1].upper + dc)))
            for dr, dc in case["vecs"]]
    rhs = refs[0]
    for r in refs[1:]:
        rhs = rhs + r
    return Assignment(ArrayRef("X", lt), rhs)


def _diag_ghost_oracle(ds, vecs, p):
    """Independent element-wise recomputation of the corner-ghost
    exchange: per unit, the union over shift vectors of its shifted
    owned cells, clipped to the domain, charged to each ghost cell's
    owner."""
    amap = ds.distribution_of("Y").primary_owner_map()
    nr, nc = amap.shape
    words = np.zeros((p, p), dtype=np.int64)
    n_messages = 0
    for u in range(p):
        cells = {(int(r), int(c))
                 for r, c in np.argwhere(amap == u)}
        ghosts = set()
        for dr, dc in vecs:
            for r, c in cells:
                s = (r + dr, c + dc)
                if 0 <= s[0] < nr and 0 <= s[1] < nc and s not in cells:
                    ghosts.add(s)
        owners = set()
        for g in ghosts:
            owner = int(amap[g])
            words[owner, u] += 1
            owners.add(owner)
        n_messages += len(owners)
    return words, n_messages


@pytest.mark.parametrize("seed", range(N_CASES))
def test_differential_diagonal_overlap(seed):
    from repro.engine.commsets import comm_matrix
    from repro.engine.overlap import overlap_plan

    case = _diag_case(seed)
    p = case["grid"][0] * case["grid"][1]
    ds = _diag_materialize(case)
    stmt = _diag_statement(case)

    # the plan exists (no diagonal rejection) with the stencil's widths
    plan = overlap_plan(ds, stmt, p)
    assert plan is not None, f"seed {seed}: diagonal stencil rejected"
    assert plan.widths_low == (
        max(0, max(-dr for dr, _ in case["vecs"])),
        max(0, max(-dc for _, dc in case["vecs"])))
    assert plan.widths_high == (
        max(0, max(dr for dr, _ in case["vecs"])),
        max(0, max(dc for _, dc in case["vecs"])))

    # exact words accounting: the plan's matrix equals the element-wise
    # ghost oracle bit-for-bit, messages included
    words_bf, msgs_bf = _diag_ghost_oracle(ds, case["vecs"], p)
    np.testing.assert_array_equal(
        plan.words, words_bf,
        err_msg=f"seed {seed}: corner-ghost words diverge from oracle")
    assert plan.n_messages == msgs_bf

    # never under-priced: every reference's exact per-element traffic
    # fits inside the ghost exchange
    lhs_sec = ds.section("X", *stmt.lhs.subscripts)
    dl = ds.distribution_of("X")
    dr_ = ds.distribution_of("Y")
    for ref in stmt.rhs.refs():
        m, _, _ = comm_matrix(dl, lhs_sec,
                              dr_, ds.section("Y", *ref.subscripts), p)
        assert (m <= plan.words).all(), \
            f"seed {seed}: overlap under-prices reference {ref}"

    # the haloed execution keeps reference numerics and charges exactly
    # the plan's matrix
    ds_ref = _diag_materialize(case)
    execute_sequential(ds_ref, stmt)
    machine = DistributedMachine(MachineConfig(p))
    report = SimulatedExecutor(ds, machine, use_overlap=True).execute(stmt)
    np.testing.assert_array_equal(
        ds.arrays["X"].data, ds_ref.arrays["X"].data,
        err_msg=f"seed {seed}: haloed numerics diverge")
    np.testing.assert_array_equal(report.words, plan.words)
