"""Golden tests for pattern-classified schedule lowering.

The contract under test: classification recognizes the paper's
structured-communication shapes (Jacobi stencils as SHIFT, replication
traffic as BROADCAST/ALLGATHER, dense remaps as ALLTOALL), never changes
what moves (``words.sum()`` and the per-pair matrix are bit-identical to
the point-to-point deposit), and charges recognized patterns strictly
less elapsed time than the point-to-point model for P >= 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr, BaseStar
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.replicated import ReplicatedFormat
from repro.engine.assignment import Assignment
from repro.engine.commsets import comm_matrix
from repro.engine.distexec import MessageAccurateExecutor
from repro.engine.executor import SimulatedExecutor
from repro.engine.expr import ArrayRef
from repro.engine.lowering import (
    Lowering,
    Pattern,
    classify_matrix,
    matrix_from_chunks,
    p2p_time,
)
from repro.engine.redistribute import charge_remap, price_remap
from repro.engine.schedule import schedule_for
from repro.fortran.triplet import Triplet
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


def _blocked_pair(n: int = 64, p: int = 8) -> DataSpace:
    ds = DataSpace(p)
    ds.processors("PR", p)
    ds.declare("A", n)
    ds.declare("B", n)
    ds.distribute("A", [Block()], to="PR")
    ds.distribute("B", [Block()], to="PR")
    return ds


def _jacobi(n: int = 64) -> Assignment:
    return Assignment(ArrayRef("A", (Triplet(2, n),)),
                      ArrayRef("B", (Triplet(1, n - 1),)))


class TestGoldenClassification:
    def test_jacobi_stencil_is_shift(self):
        ds = _blocked_pair()
        sched = schedule_for(ds, _jacobi(), 8)
        rs = sched.refs[0]
        assert rs.lowering.pattern is Pattern.SHIFT
        assert rs.lowering.offset_words == (1,)
        assert sched.patterns == {"B(1:63)": "shift"}

    def test_two_sided_stencil_is_shift(self):
        ds = _blocked_pair()
        stmt = Assignment(
            ArrayRef("A", (Triplet(2, 63),)),
            ArrayRef("B", (Triplet(1, 62),)) + ArrayRef("B", (Triplet(3, 64),)))
        sched = schedule_for(ds, stmt, 8)
        assert {r.pattern for r in sched.refs} == {"shift"}

    def test_single_root_distinct_fanout_is_scatter(self):
        # the whole referenced section lives on processor 0 and every
        # destination receives a *distinct* piece: a scatter, whose
        # root volume is irreducible (no broadcast-tree discount)
        p = 4
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("A", 64)
        ds.declare("B", 256)
        ds.distribute("A", [Cyclic()], to="PR")
        ds.distribute("B", [Block()], to="PR")   # B(1:64) all on proc 0
        stmt = Assignment(ArrayRef("A"), ArrayRef("B", (Triplet(1, 64),)))
        sched = schedule_for(ds, stmt, p)
        low = sched.refs[0].lowering
        assert low.pattern is Pattern.SCATTER
        assert low.root == 0 and low.participants == p

    def test_single_root_replicated_fanout_is_broadcast(self):
        # one old owner fanning the *same* data to a replication group:
        # BLOCK over a width-1 arrangement -> REPLICATED over the machine
        p = 4
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.processors("ONE", 1)
        ds.declare("X", 64, dynamic=True)
        ds.distribute("X", [Block()], to="ONE")  # everything on one unit
        event = ds.redistribute("X", [ReplicatedFormat()], to="PR")
        matrix, _ = price_remap(event, p)
        low = classify_matrix(matrix, replicated=True)
        assert low.pattern is Pattern.BROADCAST
        assert low.participants == p

    def test_replicated_operand_route_is_scatter_not_broadcast(self):
        # payload routes ship distinct position chunks even when the
        # array's *storage* is replicated, so the root's outgoing volume
        # is irreducible: scatter, never the broadcast-tree discount
        p = 4
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("A", 64)
        ds.declare("B", 64)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [ReplicatedFormat()], to="PR")
        stmt = Assignment(ArrayRef("A"), ArrayRef("B"))
        sched = schedule_for(ds, stmt, p, routing=True)
        assert sched.routes[0].pattern in ("scatter", "pointwise")
        assert sched.routes[0].pattern != "broadcast"

    def test_star_subscript_replication_remap_is_allgather(self):
        # the §5.1 shape: REALIGN A(I) WITH D(I, *) replicates A across
        # the second target dimension — each old owner's block must end
        # up on every processor of its row
        p, n = 8, 32
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("D", n, p)
        ds.declare("A", n, dynamic=True)
        ds.distribute("D", [Block(), Block()], to=None)
        ds.distribute("A", [Block()], to="PR")
        event = ds.realign(AlignSpec(
            "A", [AxisDummy("I")], "D",
            [BaseExpr(Dummy("I")), BaseStar()]))
        matrix, _ = price_remap(event, p)
        low = classify_matrix(matrix, replicated=event.new.is_replicated)
        assert low.pattern in (Pattern.ALLGATHER, Pattern.BROADCAST)

    def test_replicate_format_remap_is_allgather(self):
        p = 8
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("X", 64, dynamic=True)
        ds.distribute("X", [Block()], to="PR")
        event = ds.redistribute("X", [ReplicatedFormat()], to="PR")
        matrix, _ = price_remap(event, p)
        low = classify_matrix(matrix, replicated=True)
        assert low.pattern is Pattern.ALLGATHER

    def test_dense_remap_is_alltoall(self):
        p = 8
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("X", 64, dynamic=True)
        ds.distribute("X", [Block()], to="PR")
        event = ds.redistribute("X", [Cyclic()], to="PR")
        matrix, _ = price_remap(event, p)
        assert classify_matrix(matrix).pattern is Pattern.ALLTOALL

    def test_empty_matrix_is_pointwise(self):
        assert classify_matrix(np.zeros((4, 4), dtype=np.int64)) \
            .pattern is Pattern.POINTWISE

    def test_unstructured_matrix_is_pointwise(self):
        p = 12
        matrix = np.zeros((p, p), dtype=np.int64)
        # five pairs with five distinct circular offsets, sparse
        for q, d, w in [(0, 1, 9), (1, 3, 4), (2, 6, 7), (3, 8, 1),
                        (4, 10, 2)]:
            matrix[q, d] = w
        assert classify_matrix(matrix).pattern is Pattern.POINTWISE

    def test_fan_in_never_undercharges_receiver_ingest(self):
        # many-to-one uniform traffic under the replicated hint must not
        # price as ONE concurrent broadcast tree: the shared receiver
        # forces one receiver-disjoint round per incoming root, so the
        # charge covers its physical ingest volume
        p = 8
        matrix = np.zeros((p, p), dtype=np.int64)
        matrix[0:7, 7] = 16                     # seven senders, one sink
        low = classify_matrix(matrix, replicated=True)
        assert low.rounds == 7
        config = MachineConfig(p)
        machine = DistributedMachine(config)
        machine.charge_collective(matrix, low)
        assert machine.elapsed >= config.beta * matrix.sum()

    def test_overlapping_groups_price_by_round_decomposition(self):
        # two roots sharing one destination: 2 receiver-disjoint rounds,
        # still far cheaper than serialized p2p but >= any ingest volume
        p = 8
        matrix = np.zeros((p, p), dtype=np.int64)
        matrix[0, [1, 2, 4]] = 4
        matrix[3, [4, 5, 6]] = 4                # proc 4 hears two roots
        low = classify_matrix(matrix, replicated=True)
        assert low.pattern is Pattern.BROADCAST and low.rounds == 2
        config = MachineConfig(p)
        t = low.time(config)
        assert config.beta * 8 <= t < p2p_time(config, matrix)

    def test_classification_is_pure(self):
        matrix = np.arange(16, dtype=np.int64).reshape(4, 4)
        before = matrix.copy()
        classify_matrix(matrix)
        np.testing.assert_array_equal(matrix, before)


class TestWordsInvariance:
    """Lowering changes the time model and attribution — never the
    matrices, the ledger or the per-processor counters."""

    def test_schedule_matrix_equals_direct_oracle(self):
        ds = _blocked_pair()
        stmt = _jacobi()
        sched = schedule_for(ds, stmt, 8, strategy="oracle")
        m, _, _ = comm_matrix(
            ds.distribution_of("A"), stmt.lhs.section(ds),
            ds.distribution_of("B"), stmt.rhs.section(ds), 8)
        np.testing.assert_array_equal(sched.refs[0].words, m)
        assert int(sched.refs[0].words.sum()) == int(m.sum())

    def test_charge_collective_ledger_equals_exchange(self):
        rng = np.random.default_rng(11)
        matrix = rng.integers(0, 7, size=(6, 6))
        lowered = DistributedMachine(MachineConfig(6))
        lowered.charge_collective(matrix, classify_matrix(matrix), tag="t")
        p2p = DistributedMachine(MachineConfig(6))
        p2p.exchange(matrix, tag="t")
        assert lowered.ledger == p2p.ledger
        np.testing.assert_array_equal(lowered.stats.msgs_sent,
                                      p2p.stats.msgs_sent)
        np.testing.assert_array_equal(lowered.stats.words_sent,
                                      p2p.stats.words_sent)
        np.testing.assert_array_equal(lowered.stats.words_recv,
                                      p2p.stats.words_recv)

    def test_route_matrix_equals_counting_matrix(self):
        ds = _blocked_pair()
        counting = schedule_for(ds, _jacobi(), 8, strategy="oracle")
        routing = schedule_for(ds, _jacobi(), 8, routing=True)
        np.testing.assert_array_equal(routing.routes[0].words,
                                      counting.refs[0].words)
        np.testing.assert_array_equal(
            matrix_from_chunks(routing.routes[0].chunks, 8),
            routing.routes[0].words)

    def test_executor_matrices_unchanged_by_lowering(self):
        ds = _blocked_pair()
        machine = DistributedMachine(MachineConfig(8))
        report = SimulatedExecutor(ds, machine).execute(_jacobi())
        m, _, _ = comm_matrix(
            ds.distribution_of("A"), _jacobi().lhs.section(ds),
            ds.distribution_of("B"), _jacobi().rhs.section(ds), 8)
        np.testing.assert_array_equal(report.words, m)

    def test_remap_matrix_unchanged_by_lowering(self):
        p = 8
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("X", 64, dynamic=True)
        ds.distribute("X", [Block()], to="PR")
        event = ds.redistribute("X", [Cyclic()], to="PR")
        want, moved = price_remap(event, p)
        machine = DistributedMachine(MachineConfig(p))
        got, got_moved = charge_remap(machine, event)
        np.testing.assert_array_equal(got, want)
        assert got_moved == moved
        assert machine.stats.total_words == int(want.sum())


class TestCollectiveTiming:
    def test_broadcast_strictly_lower_p2p_at_4(self):
        config = MachineConfig(4)
        matrix = np.zeros((4, 4), dtype=np.int64)
        matrix[0, 1:] = 16
        low = classify_matrix(matrix, replicated=True)
        assert low.pattern is Pattern.BROADCAST
        assert low.time(config) < p2p_time(config, matrix)

    def test_scatter_charge_covers_root_volume(self):
        # the scatter tree never undercuts the root's outgoing volume
        # (the physical lower bound a broadcast-tree price would violate)
        config = MachineConfig(16)
        matrix = np.zeros((16, 16), dtype=np.int64)
        matrix[0, 1:] = 1000
        low = classify_matrix(matrix)          # not replicated
        assert low.pattern is Pattern.SCATTER
        charged = low.time(config)
        assert charged >= config.beta * matrix.sum()
        assert charged < p2p_time(config, matrix)

    def test_allgather_strictly_lower_p2p_at_4(self):
        config = MachineConfig(4)
        matrix = np.full((4, 4), 16, dtype=np.int64)
        np.fill_diagonal(matrix, 0)
        low = classify_matrix(matrix, replicated=True)
        assert low.pattern is Pattern.ALLGATHER
        assert low.time(config) < p2p_time(config, matrix)

    def test_alltoall_strictly_lower_p2p_at_4(self):
        config = MachineConfig(4)
        matrix = np.full((4, 4), 16, dtype=np.int64)
        np.fill_diagonal(matrix, 0)
        low = classify_matrix(matrix)
        assert low.pattern is Pattern.ALLTOALL
        assert low.time(config) < p2p_time(config, matrix)

    def test_shift_strictly_lower_than_serialized_neighbours(self):
        config = MachineConfig(8)
        ds = _blocked_pair()
        machine = DistributedMachine(config)
        report = SimulatedExecutor(ds, machine).execute(_jacobi())
        comm = sum(machine.stats.pattern_time.values())
        assert comm < p2p_time(config, report.words)

    def test_charged_time_never_exceeds_p2p(self):
        # transport selection: min(collective, p2p) on arbitrary traffic
        rng = np.random.default_rng(5)
        for p in (2, 4, 7, 16):
            config = MachineConfig(p)
            for _ in range(20):
                matrix = rng.integers(0, 50, size=(p, p))
                matrix[rng.random((p, p)) < 0.5] = 0
                machine = DistributedMachine(config)
                machine.charge_collective(matrix, classify_matrix(matrix))
                assert machine.elapsed <= \
                    p2p_time(config, matrix) + 1e-9

    def test_pointwise_fallback_matches_exchange_time(self):
        matrix = np.zeros((12, 12), dtype=np.int64)
        for q, d, w in [(0, 1, 9), (1, 3, 4), (2, 6, 7), (3, 8, 1),
                        (4, 10, 2)]:
            matrix[q, d] = w
        lowered = DistributedMachine(MachineConfig(12))
        lowered.charge_collective(matrix, classify_matrix(matrix))
        p2p = DistributedMachine(MachineConfig(12))
        p2p.exchange(matrix)
        assert lowered.elapsed == pytest.approx(p2p.elapsed)

    def test_hop_sensitive_machines_keep_p2p_model(self):
        from repro.processors.topology import Line
        config = MachineConfig(4, hop_factor=0.5, topology=Line(4))
        matrix = np.full((4, 4), 16, dtype=np.int64)
        np.fill_diagonal(matrix, 0)
        low = classify_matrix(matrix)
        assert low.time(config) is None
        lowered = DistributedMachine(config)
        lowered.charge_collective(matrix, low)
        p2p = DistributedMachine(config)
        p2p.exchange(matrix)
        assert lowered.elapsed == pytest.approx(p2p.elapsed)


class TestPatternAttribution:
    def test_report_and_stats_attribute_shift(self):
        ds = _blocked_pair()
        machine = DistributedMachine(MachineConfig(8))
        report = SimulatedExecutor(ds, machine).execute(_jacobi())
        assert report.patterns == {"B(1:63)": "shift"}
        assert report.words_by_pattern() == {"shift": report.total_words}
        assert machine.stats.pattern_words == {"shift": report.total_words}
        assert machine.stats.pattern_msgs["shift"] == 7

    def test_message_accurate_attributes_patterns(self):
        ds = _blocked_pair()
        ds.arrays["B"].data[:] = np.arange(64.0)
        machine = DistributedMachine(MachineConfig(8))
        report = MessageAccurateExecutor(ds, machine).execute(_jacobi())
        assert report.patterns == {"B(1:63)": "shift"}
        assert machine.stats.pattern_words == {"shift": report.total_words}

    def test_remap_attributes_allgather(self):
        p = 8
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("X", 64, dynamic=True)
        ds.distribute("X", [Block()], to="PR")
        event = ds.redistribute("X", [ReplicatedFormat()], to="PR")
        machine = DistributedMachine(MachineConfig(p))
        matrix, _ = charge_remap(machine, event)
        off = matrix.copy()
        np.fill_diagonal(off, 0)
        assert machine.stats.pattern_words == {"allgather": int(off.sum())}
        assert machine.elapsed < p2p_time(machine.config, matrix)

    def test_local_only_statement_records_no_pattern_buckets(self):
        # both executors agree: a ref that moves nothing leaves no
        # (zero-valued) entry in the machine's pattern stats
        ds = _blocked_pair()
        stmt = Assignment(ArrayRef("A"), ArrayRef("B"))   # collocated
        m_sim = DistributedMachine(MachineConfig(8))
        report = SimulatedExecutor(ds, m_sim).execute(stmt)
        m_msg = DistributedMachine(MachineConfig(8))
        MessageAccurateExecutor(ds, m_msg).execute(stmt)
        assert m_sim.stats.pattern_words == {} == m_msg.stats.pattern_words
        assert m_sim.stats.pattern_time == {} == m_msg.stats.pattern_time
        assert report.words_by_pattern() == {}

    def test_stats_merge_accumulates_patterns(self):
        a = DistributedMachine(MachineConfig(4))
        b = DistributedMachine(MachineConfig(4))
        matrix = np.full((4, 4), 3, dtype=np.int64)
        np.fill_diagonal(matrix, 0)
        low = classify_matrix(matrix)
        a.charge_collective(matrix, low)
        b.charge_collective(matrix, low)
        merged = a.stats.copy().merge(b.stats)
        assert merged.pattern_words["alltoall"] == \
            2 * a.stats.pattern_words["alltoall"]

    def test_overlap_exchange_classified(self):
        ds = _blocked_pair()
        machine = DistributedMachine(MachineConfig(8))
        ex = SimulatedExecutor(ds, machine, use_overlap=True)
        report = ex.execute(_jacobi())
        assert report.patterns.get("*") == "shift"
        assert machine.stats.pattern_words.get("shift") == \
            report.total_words


class TestLoweringObjects:
    def test_lowering_is_frozen_and_defaulted(self):
        low = Lowering(Pattern.POINTWISE)
        with pytest.raises(AttributeError):
            low.pattern = Pattern.SHIFT
        assert low.time(MachineConfig(4)) is None

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            classify_matrix(np.zeros((3, 4), dtype=np.int64))
