"""Property-based tests: analytic communication sets == vectorized oracle.

This is the load-bearing equivalence of the execution engine: the closed-
form regular-section computation (the SUPERB/VFCS technique [13]) must
agree exactly with dense owner-map comparison for every mapping pair and
section pair in the regular family.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block, BlockVariant
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.commsets import (
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.fortran.triplet import Triplet


@st.composite
def formats(draw, np_, n):
    kind = draw(st.sampled_from(["block", "vienna", "cyclic", "gb"]))
    if kind == "block":
        return Block()
    if kind == "vienna":
        return Block(variant=BlockVariant.VIENNA)
    if kind == "cyclic":
        return Cyclic(draw(st.integers(1, 5)))
    cuts = sorted(draw(st.lists(st.integers(0, n), min_size=np_ - 1,
                                max_size=np_ - 1)))
    return GeneralBlock(cuts)


@st.composite
def sections(draw, n, count):
    """``count`` conformable sections of a [1:n] dimension."""
    length = draw(st.integers(1, n))
    out = []
    for _ in range(count):
        stride = draw(st.integers(1, 4))
        max_lo = n - (length - 1) * stride
        if max_lo < 1:
            stride = max((n - 1) // max(length - 1, 1), 1)
            max_lo = n - (length - 1) * stride
        lo = draw(st.integers(1, max(max_lo, 1)))
        out.append(Triplet(lo, lo + (length - 1) * stride, stride))
    return out


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_analytic_equals_oracle_1d(data):
    n = 80
    np_ = data.draw(st.integers(2, 6))
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("X", n)
    ds.declare("Y", n)
    ds.distribute("X", [data.draw(formats(np_, n))], to="PR")
    ds.distribute("Y", [data.draw(formats(np_, n))], to="PR")
    lsec, rsec = data.draw(sections(n, 2))
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sl = ds.section("X", lsec)
    sr = ds.section("Y", rsec)
    m_oracle, local, off = comm_matrix(dl, sl, dr, sr, np_)
    pieces = analytic_comm_sets(dl, sl, dr, sr)
    m_analytic = words_matrix_from_pieces(pieces, np_)
    np.testing.assert_array_equal(m_oracle, m_analytic)
    assert local + off == len(lsec)
    assert m_oracle.sum() == off


@given(st.data())
@settings(max_examples=50, deadline=None)
def test_analytic_equals_oracle_2d(data):
    rows = data.draw(st.integers(2, 3))
    cols = data.draw(st.integers(1, 3))
    np_ = rows * cols
    ds = DataSpace(np_)
    ds.processors("PR", rows, cols)
    n1, n2 = 24, 18
    ds.declare("X", n1, n2)
    ds.declare("Y", n1, n2)
    f = lambda: data.draw(formats(rows, n1))  # noqa: E731
    g = lambda: data.draw(formats(cols, n2))  # noqa: E731
    ds.distribute("X", [f(), g()], to="PR")
    ds.distribute("Y", [f(), g()], to="PR")
    (l1, r1) = data.draw(sections(n1, 2))
    (l2, r2) = data.draw(sections(n2, 2))
    dl, dr = ds.distribution_of("X"), ds.distribution_of("Y")
    sl = ds.section("X", l1, l2)
    sr = ds.section("Y", r1, r2)
    m_oracle, _, off = comm_matrix(dl, sl, dr, sr, np_)
    m_analytic = words_matrix_from_pieces(
        analytic_comm_sets(dl, sl, dr, sr), np_)
    np.testing.assert_array_equal(m_oracle, m_analytic)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_remap_pricing_conserves_elements(data):
    """price_remap moves exactly the elements whose owner changed, and
    row/column sums match the per-processor gains/losses."""
    from repro.engine.redistribute import price_remap
    np_ = data.draw(st.integers(2, 6))
    n = data.draw(st.integers(np_, 100))
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n, dynamic=True)
    ds.distribute("A", [data.draw(formats(np_, n))], to="PR")
    old_map = ds.owner_map("A").copy()
    event = ds.redistribute("A", [data.draw(formats(np_, n))], to="PR")
    new_map = ds.owner_map("A")
    matrix, moved = price_remap(event, np_)
    assert moved == int((old_map != new_map).sum())
    # outgoing words per processor == elements it lost
    for p in range(np_):
        lost = int(((old_map == p) & (new_map != p)).sum())
        gained = int(((new_map == p) & (old_map != p)).sum())
        assert matrix[p, :].sum() == lost
        assert matrix[:, p].sum() == gained
