"""Edge-case and error-path coverage across subsystems."""

import pytest

from repro.core.array import HpfArray
from repro.core.dataspace import _factorize
from repro.core.mapping import BlockFirstDimPolicy
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import (
    AllocationError,
    DirectiveError,
    DistributionError,
    MappingError,
    ReproError,
)
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors
        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not ReproError:
                assert issubclass(obj, ReproError), name

    def test_directive_error_location(self):
        err = DirectiveError("bad", line=3, column=7, text="REAL A(")
        assert "line 3" in str(err) and "column 7" in str(err)
        assert "REAL A(" in str(err)


class TestHpfArrayEdges:
    def test_unallocated_access(self):
        arr = HpfArray("A", None, allocatable=True, rank=1)
        with pytest.raises(AllocationError):
            _ = arr.domain
        with pytest.raises(AllocationError):
            _ = arr.data

    def test_non_allocatable_needs_domain(self):
        with pytest.raises(AllocationError):
            HpfArray("A", None)

    def test_rank_contradiction(self):
        with pytest.raises(AllocationError):
            HpfArray("A", IndexDomain.standard(4), rank=2)

    def test_non_standard_domain_rejected(self):
        with pytest.raises(AllocationError):
            HpfArray("A", IndexDomain([Triplet(1, 9, 2)]))

    def test_get_set_by_global_index(self):
        arr = HpfArray("A", IndexDomain.of_bounds((0, 3), (2, 4)))
        arr.set((0, 2), 5.0)
        assert arr.get((0, 2)) == 5.0
        with pytest.raises(IndexError):
            arr.get((4, 2))

    def test_instance_counter(self):
        arr = HpfArray("A", None, allocatable=True, rank=1)
        assert arr.instance == 0
        arr.allocate(IndexDomain.standard(4))
        assert arr.instance == 1
        arr.deallocate()
        arr.allocate(IndexDomain.standard(8))
        assert arr.instance == 2

    def test_fill_sequence_column_major(self):
        arr = HpfArray("A", IndexDomain.standard(2, 2))
        arr.fill_sequence()
        assert arr.get((2, 1)) == 1.0
        assert arr.get((1, 2)) == 2.0

    def test_repr(self):
        arr = HpfArray("A", IndexDomain.standard(4), dynamic=True)
        assert "DYNAMIC" in repr(arr)


class TestFactorize:
    @pytest.mark.parametrize("n,ndims", [
        (12, 2), (16, 2), (17, 2), (64, 3), (1, 2), (7, 3), (100, 2),
    ])
    def test_product_preserved(self, n, ndims):
        dims = _factorize(n, ndims)
        assert len(dims) == ndims
        prod = 1
        for d in dims:
            prod *= d
        assert prod == n

    def test_near_square(self):
        assert sorted(_factorize(16, 2)) == [4, 4]
        assert sorted(_factorize(12, 2)) == [3, 4]


class TestPolicy:
    def test_policy_reuses_ap_arrangement(self):
        ap = AbstractProcessors(8)
        policy = BlockFirstDimPolicy()
        d1 = policy.implicit_distribution(IndexDomain.standard(16), ap)
        d2 = policy.implicit_distribution(IndexDomain.standard(32), ap)
        assert d1.target.arrangement is d2.target.arrangement

    def test_policy_scalar(self):
        ap = AbstractProcessors(4)
        policy = BlockFirstDimPolicy()
        d = policy.implicit_distribution(IndexDomain.scalar(), ap)
        assert d.owners(()) == frozenset(range(4))


class TestDataSpaceEdges:
    def test_unknown_array(self, ds8):
        with pytest.raises(MappingError):
            ds8.distribution_of("NOPE")

    def test_resolve_bad_target(self, ds8):
        with pytest.raises(DistributionError):
            ds8.resolve_target(3.14, 1)

    def test_scalar_target_with_formats_rejected(self, ds8):
        ds8.scalar_processors("CTRL")
        ds8.declare("A", 8)
        with pytest.raises(DistributionError):
            ds8.distribute("A", [Block()], to="CTRL")

    def test_redistribute_unallocated(self, ds8):
        ds8.declare("C", allocatable=True, rank=1, dynamic=True)
        with pytest.raises(AllocationError):
            ds8.redistribute("C", [Block()], to="PR")

    def test_pending_both_align_and_distribute_rejected(self, ds8):
        from repro.align.ast import Dummy
        from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
        ds8.declare("A", 16)
        ds8.declare("C", allocatable=True, rank=1)
        ds8.distribute("C", [Block()], to="PR")
        ds8.align(AlignSpec("C", [AxisDummy("I")], "A",
                            [BaseExpr(Dummy("I"))]))
        with pytest.raises(MappingError):
            ds8.allocate("C", 16)

    def test_constant_definition(self, ds8):
        ds8.constant("N", 12)
        assert ds8.env["N"] == 12

    def test_unresolved_constant_fails_at_evaluation(self, ds8):
        # an unresolved Name survives reduction symbolically; the error
        # surfaces when the alignment image is first evaluated
        from repro.align.ast import Dummy, Name
        from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
        from repro.errors import AlignmentError
        ds8.declare("A", 16)
        ds8.declare("B", 8)
        spec = AlignSpec("B", [AxisDummy("I")], "A",
                         [BaseExpr(Name("Q") * Dummy("I"))])
        ds8.align(spec)
        with pytest.raises(AlignmentError):
            ds8.owners("B", (2,))


class TestExecutorEdges:
    def test_analytic_strategy_raises_on_unsupported(self, ds8,
                                                     machine8):
        from repro.align.ast import Dummy
        from repro.align.spec import (AlignSpec, AxisDummy, BaseExpr,
                                      BaseStar)
        from repro.engine.assignment import Assignment
        from repro.engine.commsets import AnalyticUnsupported
        from repro.engine.executor import SimulatedExecutor
        from repro.engine.expr import ArrayRef
        ds8.declare("D", 16, 8)
        ds8.declare("R", 16)
        ds8.declare("L", 16)
        ds8.distribute("D", [Block(), Block()], to=None)
        ds8.distribute("L", [Block()], to="PR")
        ds8.align(AlignSpec("R", [AxisDummy("I")], "D",
                            [BaseExpr(Dummy("I")), BaseStar()]))
        ex = SimulatedExecutor(ds8, machine8, strategy="analytic")
        with pytest.raises(AnalyticUnsupported):
            ex.execute(Assignment(ArrayRef("L"), ArrayRef("R")))

    def test_auto_strategy_falls_back(self, ds8, machine8):
        from repro.align.ast import Dummy
        from repro.align.spec import (AlignSpec, AxisDummy, BaseExpr,
                                      BaseStar)
        from repro.engine.assignment import Assignment
        from repro.engine.executor import SimulatedExecutor
        from repro.engine.expr import ArrayRef
        ds8.declare("D", 16, 8)
        ds8.declare("R", 16)
        ds8.declare("L", 16)
        ds8.distribute("D", [Block(), Block()], to=None)
        ds8.distribute("L", [Block()], to="PR")
        ds8.align(AlignSpec("R", [AxisDummy("I")], "D",
                            [BaseExpr(Dummy("I")), BaseStar()]))
        ex = SimulatedExecutor(ds8, machine8, strategy="auto")
        rep = ex.execute(Assignment(ArrayRef("L"), ArrayRef("R")))
        assert rep.strategies[str(ArrayRef("R"))] == "oracle"

    def test_unknown_strategy(self, blocked_pair, machine8):
        from repro.engine.executor import SimulatedExecutor
        with pytest.raises(ValueError):
            SimulatedExecutor(blocked_pair, machine8, strategy="magic")


class TestCyclicOwnedEdge:
    def test_trailing_coord_with_no_elements(self):
        cd = Cyclic(4).bind(Triplet(1, 6), 3)
        assert cd.owned(2) == ()
        assert cd.local_extent(2) == 0

    def test_more_processors_than_elements(self):
        cd = Cyclic().bind(Triplet(1, 3), 8)
        assert [cd.local_extent(p) for p in range(8)] == \
            [1, 1, 1, 0, 0, 0, 0, 0]
