"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.machine.config import MachineConfig
from repro.machine.simulator import DistributedMachine


@pytest.fixture
def ds8() -> DataSpace:
    """A data space over 8 processors with a 1-D arrangement PR(8)."""
    ds = DataSpace(8)
    ds.processors("PR", 8)
    return ds


@pytest.fixture
def ds16_grid() -> DataSpace:
    """A data space over a 4x4 arrangement PR(4,4)."""
    ds = DataSpace(16)
    ds.processors("PR", 4, 4)
    return ds


@pytest.fixture
def machine8() -> DistributedMachine:
    return DistributedMachine(MachineConfig(8))


@pytest.fixture
def blocked_pair(ds8: DataSpace) -> DataSpace:
    """Two BLOCK-distributed 1-D arrays A, B of 64 elements."""
    ds8.declare("A", 64)
    ds8.declare("B", 64)
    ds8.distribute("A", [Block()], to="PR")
    ds8.distribute("B", [Block()], to="PR")
    return ds8


@pytest.fixture
def cyclic_pair(ds8: DataSpace) -> DataSpace:
    """A BLOCK array and a CYCLIC(3) array of 60 elements."""
    ds8.declare("A", 60)
    ds8.declare("B", 60)
    ds8.distribute("A", [Block()], to="PR")
    ds8.distribute("B", [Cyclic(3)], to="PR")
    return ds8
