"""Property-based tests for the triplet algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fortran.triplet import Triplet

# bounded so brute-force set enumeration stays cheap
_lo = st.integers(-200, 200)
_len = st.integers(0, 60)
_stride = st.integers(1, 12)
_sign = st.sampled_from([1, -1])


@st.composite
def triplets(draw) -> Triplet:
    lo = draw(_lo)
    n = draw(_len)
    s = draw(_stride) * draw(_sign)
    if n == 0:
        # an empty triplet: upper on the wrong side
        return Triplet(lo, lo - s, s)
    return Triplet(lo, lo + (n - 1) * s, s)


@given(triplets())
def test_length_matches_enumeration(t):
    assert len(t) == len(list(t))


@given(triplets(), st.integers(-500, 500))
def test_membership_matches_enumeration(t, v):
    assert (v in t) == (v in set(t))


@given(triplets())
def test_values_matches_iteration(t):
    np.testing.assert_array_equal(t.values(), list(t))


@given(triplets())
def test_position_value_roundtrip(t):
    for pos, v in enumerate(t):
        assert t.position(v) == pos
        assert t.value_at(pos) == v


@given(triplets())
def test_ascending_set_is_same_set(t):
    assert set(t.as_ascending_set()) == set(t)
    a = t.as_ascending_set()
    if len(a) > 0:
        assert a.stride > 0 and a.lower == min(set(t) | {a.lower})


@given(triplets(), triplets())
@settings(max_examples=200)
def test_intersection_is_set_intersection(a, b):
    got = a.intersect(b)
    expected = sorted(set(a) & set(b))
    assert list(got) == expected


@given(triplets(), triplets())
def test_subset_matches_sets(a, b):
    assert a.is_subset_of(b) == (set(a) <= set(b))


@given(triplets(), st.integers(-5, 5), st.integers(-50, 50))
def test_affine_image_is_mapped_set(t, a, b):
    got = set(t.affine_image(a, b))
    expected = {a * v + b for v in t}
    assert got == expected


@given(triplets(), st.integers(-100, 100))
def test_shift_translates(t, off):
    assert list(t.shift(off)) == [v + off for v in t]


@given(triplets(), st.data())
@settings(max_examples=150)
def test_compose_selects_positions(outer, data):
    n = len(outer)
    if n == 0:
        return
    # an inner triplet over positions 1..n
    lo = data.draw(st.integers(1, n))
    hi = data.draw(st.integers(1, n))
    step = data.draw(st.integers(1, 5)) * (1 if hi >= lo else -1)
    inner = Triplet(lo, hi, step)
    got = list(outer.compose(inner, base=1))
    expected = [outer.value_at(p - 1) for p in inner]
    assert got == expected
