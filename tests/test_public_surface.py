"""The curated public surface: ``repro`` exports exactly the Session
front door, and every former top-level re-export still works through a
DeprecationWarning shim (locked alongside the ruff F401/F822 rules)."""

import warnings

import pytest

import repro


EXPECTED_ALL = [
    "Backend",
    "DistributedArray",
    "ExecutionReport",
    "MachineConfig",
    "Session",
    "__version__",
]


def test_all_is_exactly_the_front_door():
    assert sorted(repro.__all__) == EXPECTED_ALL


def test_front_door_importable_without_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        for name in EXPECTED_ALL:
            getattr(repro, name)


@pytest.mark.parametrize("name", sorted(repro._DEPRECATED))
def test_shims_warn_and_resolve(name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        obj = getattr(repro, name)
    assert obj is not None
    assert any(issubclass(w.category, DeprecationWarning)
               for w in caught), f"{name} shim did not warn"
    # the shim resolves to the real object in its home module
    import importlib
    home = importlib.import_module(repro._DEPRECATED[name])
    assert obj is getattr(home, name)


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NotAThing


def test_dir_covers_both_surfaces():
    names = dir(repro)
    assert "Session" in names and "DataSpace" in names


def test_internal_modules_do_not_use_shims():
    """No module inside src/repro imports the deprecated top-level
    names — the shims exist for external callers only (CI additionally
    errors on the warning firing from inside the package)."""
    import ast
    import pathlib
    src = pathlib.Path(repro.__file__).resolve().parent
    offenders = []
    for path in src.rglob("*.py"):
        if path == src / "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "repro":
                offenders.append(path)
                break
    assert not offenders, f"internal shim use in {offenders}"
