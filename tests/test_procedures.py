"""Unit tests for procedure-boundary semantics (§7)."""

import pytest

from repro.align.ast import Dummy
from repro.align.spec import AlignSpec, AxisDummy, BaseExpr
from repro.core.dataspace import DataSpace
from repro.core.procedures import (
    DummyMode,
    DummySpec,
    InheritedSectionDistribution,
    Procedure,
    distributions_equal,
)
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.errors import ConformanceError, ProcedureError
from repro.fortran.triplet import Triplet


def caller(n=48, np_=4, fmt=None):
    ds = DataSpace(np_)
    ds.processors("PR", np_)
    ds.declare("A", n)
    ds.distribute("A", [fmt if fmt is not None else Block()], to="PR")
    return ds


def noop(frame, *arrays):
    return None


class TestDummySpecValidation:
    def test_explicit_needs_formats(self):
        with pytest.raises(ProcedureError):
            DummySpec("X", DummyMode.EXPLICIT)

    def test_aligned_needs_spec(self):
        with pytest.raises(ProcedureError):
            DummySpec("X", DummyMode.ALIGNED)

    def test_align_spec_alignee_must_match(self):
        spec = AlignSpec("Y", [AxisDummy("I")], "Z",
                         [BaseExpr(Dummy("I"))])
        with pytest.raises(ProcedureError):
            DummySpec("X", DummyMode.ALIGNED, align=spec)

    def test_duplicate_dummy_names(self):
        with pytest.raises(ProcedureError):
            Procedure("P", [DummySpec("X"), DummySpec("X")], noop)

    def test_arity_check(self):
        ds = caller()
        proc = Procedure("P", [DummySpec("X")], noop)
        with pytest.raises(ProcedureError):
            proc.call(ds)


class TestInherit:
    def test_whole_array_inherits_identity(self):
        ds = caller()
        seen = {}

        def body(frame, x):
            seen["dist"] = frame.distribution_of("X")
            seen["domain"] = x.domain

        Procedure("P", [DummySpec("X", DummyMode.INHERIT)], body).call(
            ds, "A")
        assert distributions_equal(seen["dist"], ds.distribution_of("A"))
        assert seen["domain"] == ds.arrays["A"].domain

    def test_section_inherits_restriction(self):
        # §8.1.2: X inherits the distribution of A(2:996:2)
        ds = caller(n=1000, fmt=Cyclic(3))
        seen = {}

        def body(frame, x):
            seen["dist"] = frame.distribution_of("X")

        Procedure("P", [DummySpec("X", DummyMode.INHERIT)], body).call(
            ds, ("A", (Triplet(2, 996, 2),)))
        dist = seen["dist"]
        assert isinstance(dist, InheritedSectionDistribution)
        a = ds.distribution_of("A")
        for k in (1, 100, 498):
            assert dist.owners((k,)) == a.owners((2 * k,))

    def test_inherit_costs_nothing(self):
        ds = caller()
        rec = Procedure("P", [DummySpec("X", DummyMode.INHERIT)],
                        noop).call(ds, "A")
        assert not rec.entry_remaps and not rec.exit_restores

    def test_dummy_aliases_actual_storage(self):
        ds = caller(n=10)
        ds.arrays["A"].fill_sequence()

        def body(frame, x):
            x.data[0] = 99.0

        Procedure("P", [DummySpec("X", DummyMode.INHERIT)], noop and
                  body).call(ds, "A")
        assert ds.arrays["A"].data[0] == 99.0

    def test_section_view_aliases(self):
        ds = caller(n=10)
        ds.arrays["A"].fill_sequence()

        def body(frame, x):
            x.data[1] = -1.0     # second element of the section

        Procedure("P", [DummySpec("X", DummyMode.INHERIT)], body).call(
            ds, ("A", (Triplet(2, 10, 2),)))
        assert ds.arrays["A"].data[3] == -1.0     # A(4)


class TestExplicit:
    def test_remap_and_restore(self):
        ds = caller()
        proc = Procedure("P", [DummySpec(
            "X", DummyMode.EXPLICIT, formats=(Cyclic(),), to="PR")], noop)
        rec = proc.call(ds, "A")
        assert len(rec.entry_remaps) == 1
        assert len(rec.exit_restores) == 1
        # the caller's mapping is BLOCK again after return
        assert ds.owners("A", (1,)) == frozenset({0})
        assert ds.owners("A", (48,)) == frozenset({3})

    def test_matching_explicit_is_free(self):
        ds = caller()
        proc = Procedure("P", [DummySpec(
            "X", DummyMode.EXPLICIT, formats=(Block(),), to="PR")], noop)
        rec = proc.call(ds, "A")
        assert not rec.entry_remaps

    def test_dummy_sees_explicit_distribution(self):
        ds = caller()
        seen = {}

        def body(frame, x):
            seen["owners1"] = frame.owners("X", (1,))
            seen["owners2"] = frame.owners("X", (2,))

        Procedure("P", [DummySpec(
            "X", DummyMode.EXPLICIT, formats=(Cyclic(),), to="PR")],
            body).call(ds, "A")
        assert seen["owners1"] == frozenset({0})
        assert seen["owners2"] == frozenset({1})


class TestInheritMatch:
    def test_match_passes(self):
        ds = caller()
        proc = Procedure("P", [DummySpec(
            "X", DummyMode.INHERIT_MATCH, formats=(Block(),),
            to="PR")], noop)
        rec = proc.call(ds, "A")
        assert not rec.entry_remaps

    def test_mismatch_nonconforming(self):
        ds = caller()
        proc = Procedure("P", [DummySpec(
            "X", DummyMode.INHERIT_MATCH, formats=(Cyclic(),),
            to="PR")], noop)
        with pytest.raises(ConformanceError):
            proc.call(ds, "A")

    def test_mismatch_with_interface_remaps(self):
        ds = caller()
        proc = Procedure("P", [DummySpec(
            "X", DummyMode.INHERIT_MATCH, formats=(Cyclic(),),
            to="PR")], noop)
        rec = proc.call(ds, "A", interface_known=True)
        assert len(rec.entry_remaps) == 1
        assert len(rec.exit_restores) == 1


class TestImplicitAndAligned:
    def test_implicit_uses_policy(self):
        ds = caller(fmt=Cyclic())
        seen = {}

        def body(frame, x):
            seen["src"] = frame.distribution_source("X")
            seen["dist"] = frame.distribution_of("X")

        rec = Procedure("P", [DummySpec("X", DummyMode.IMPLICIT)],
                        body).call(ds, "A")
        # policy default is BLOCK-first-dim: differs from CYCLIC
        assert rec.entry_remaps

    def test_aligned_dummy_follows_other_dummy(self):
        ds = caller(n=48, fmt=Cyclic())
        ds.declare("B", 24)
        ds.distribute("B", [Block()], to="PR")
        spec = AlignSpec("Y", [AxisDummy("I")], "X",
                         [BaseExpr(2 * Dummy("I"))])
        seen = {}

        def body(frame, x, y):
            seen["x"] = frame.owners("X", (6,))
            seen["y"] = frame.owners("Y", (3,))

        proc = Procedure("P", [
            DummySpec("X", DummyMode.INHERIT),
            DummySpec("Y", DummyMode.ALIGNED, align=spec),
        ], body)
        proc.call(ds, "A", "B")
        assert seen["y"] == seen["x"]


class TestRestoreOnExit:
    def test_body_redistribute_restored(self):
        ds = caller()
        proc = Procedure("P", [DummySpec("X", DummyMode.INHERIT,
                                         dynamic=True)],
                         lambda frame, x: frame.redistribute(
                             "X", [Cyclic()], to=None))
        rec = proc.call(ds, "A")
        assert len(rec.body_events) == 1
        assert len(rec.exit_restores) == 1
        restore = rec.exit_restores[0]
        assert distributions_equal(restore.new, ds.distribution_of("A"))

    def test_local_align_to_dummy(self):
        # §7: "a local data object may be aligned to a dummy argument"
        ds = caller()

        def body(frame, x):
            frame.declare("L", 24)
            spec = AlignSpec("L", [AxisDummy("I")], "X",
                             [BaseExpr(2 * Dummy("I"))])
            frame.align(spec)
            return frame.owners("L", (5,)) == frame.owners("X", (10,))

        rec = Procedure("P", [DummySpec("X", DummyMode.INHERIT)],
                        body).call(ds, "A")
        assert rec.result is True

    def test_local_forest_does_not_leak(self):
        # the alignment tree is local to a procedure (§7)
        ds = caller()
        ds.declare("B", 48)
        ds.align(AlignSpec("B", [AxisDummy("I")], "A",
                           [BaseExpr(Dummy("I"))]))
        Procedure("P", [DummySpec("X", DummyMode.INHERIT)],
                  noop).call(ds, "A")
        assert ds.forest.parent_of("B") == "A"
        assert "X" not in ds.forest
