"""Unit tests for index domains, array sections and storage (S1)."""

import numpy as np
import pytest

from repro.fortran.domain import IndexDomain
from repro.fortran.section import ArraySection, full_section
from repro.fortran.storage import StorageAssociation, sequence_offset
from repro.fortran.triplet import Triplet


class TestIndexDomain:
    def test_standard_constructor(self):
        d = IndexDomain.standard(4, 3)
        assert d.rank == 2 and d.shape == (4, 3) and d.size == 12
        assert d.lowers == (1, 1) and d.uppers == (4, 3)
        assert d.is_standard

    def test_bounds_constructor(self):
        # the paper's U(0:N, 1:N)
        d = IndexDomain.of_bounds((0, 8), (1, 8))
        assert d.shape == (9, 8) and d.lowers == (0, 1)

    def test_scalar_domain(self):
        d = IndexDomain.scalar()
        assert d.rank == 0 and d.size == 1
        assert () in d
        assert list(d) == [()]

    def test_strided_domain_not_standard(self):
        d = IndexDomain([Triplet(1, 9, 2)])
        assert not d.is_standard

    def test_membership(self):
        d = IndexDomain.of_bounds((0, 4), (1, 3))
        assert (0, 1) in d and (4, 3) in d
        assert (5, 1) not in d and (0, 0) not in d
        assert (1,) not in d            # wrong rank

    def test_column_major_iteration(self):
        d = IndexDomain.standard(2, 3)
        assert list(d) == [(1, 1), (2, 1), (1, 2), (2, 2), (1, 3), (2, 3)]

    def test_empty_domain_iteration(self):
        d = IndexDomain([Triplet(1, 0)])
        assert list(d) == [] and d.is_empty

    def test_linear_index_roundtrip(self):
        d = IndexDomain.of_bounds((0, 3), (2, 5), (1, 2))
        for k, idx in enumerate(d):
            assert d.linear_index(idx) == k
            assert d.index_at(k) == idx

    def test_linear_index_out_of_domain(self):
        with pytest.raises(IndexError):
            IndexDomain.standard(3).linear_index((4,))
        with pytest.raises(IndexError):
            IndexDomain.standard(3).index_at(3)

    def test_linear_indices_vectorized(self):
        d = IndexDomain.of_bounds((0, 3), (1, 4))
        idx = np.array(list(d))
        np.testing.assert_array_equal(d.linear_indices(idx),
                                      np.arange(d.size))

    def test_to_standard(self):
        d = IndexDomain.of_bounds((0, 8), (1, 8))
        assert d.to_standard() == IndexDomain.standard(9, 8)

    def test_drop_dims(self):
        d = IndexDomain.standard(2, 3, 4)
        assert d.drop_dims([1]).shape == (2, 4)

    def test_equality(self):
        assert IndexDomain.standard(4) == IndexDomain.of_bounds((1, 4))
        assert IndexDomain.standard(4) != IndexDomain.of_bounds((0, 3))


class TestArraySection:
    def setup_method(self):
        self.parent = IndexDomain.of_bounds((0, 9), (1, 8))

    def test_full_section(self):
        s = full_section(self.parent)
        assert s.rank == 2 and s.shape == (10, 8)
        assert s.to_parent((1, 1)) == (0, 1)

    def test_triplet_section(self):
        s = ArraySection(self.parent, (Triplet(0, 8, 2), Triplet(2, 5)))
        assert s.shape == (5, 4)
        assert s.to_parent((3, 2)) == (4, 3)
        assert s.from_parent((4, 3)) == (3, 2)

    def test_scalar_subscript_drops_dim(self):
        s = ArraySection(self.parent, (3, Triplet(1, 8)))
        assert s.rank == 1 and s.shape == (8,)
        assert s.to_parent((5,)) == (3, 5)

    def test_domain_is_standard(self):
        s = ArraySection(self.parent, (Triplet(2, 8, 3), 4))
        assert s.domain() == IndexDomain.standard(3)

    def test_contains_parent(self):
        s = ArraySection(self.parent, (Triplet(0, 8, 2), 4))
        assert s.contains_parent((6, 4))
        assert not s.contains_parent((5, 4))
        assert not s.contains_parent((6, 5))

    def test_parent_indices_enumeration(self):
        s = ArraySection(self.parent, (Triplet(0, 4, 2), Triplet(7, 8)))
        got = list(s.parent_indices())
        assert got == [(0, 7), (2, 7), (4, 7), (0, 8), (2, 8), (4, 8)]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(IndexError):
            ArraySection(self.parent, (Triplet(0, 10), Triplet(1, 8)))
        with pytest.raises(IndexError):
            ArraySection(self.parent, (Triplet(0, 9), 9))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            ArraySection(self.parent, (Triplet(0, 9),))

    def test_compose_section_of_section(self):
        # pass A(2:996:2), then sub-section the dummy X(1:10:3)
        parent = IndexDomain.standard(1000)
        outer = ArraySection(parent, (Triplet(2, 996, 2),))
        inner = ArraySection(outer.domain(), (Triplet(1, 10, 3),))
        composed = outer.compose(inner)
        assert composed.parent == parent
        assert list(composed.triplets[0]) == [2, 8, 14, 20]

    def test_compose_scalar_inner(self):
        parent = IndexDomain.standard(10, 10)
        outer = ArraySection(parent, (Triplet(2, 10, 2), Triplet(1, 10)))
        inner = ArraySection(outer.domain(), (3, Triplet(2, 9)))
        composed = outer.compose(inner)
        assert composed.rank == 1
        assert composed.subscripts[0] == 6      # third of 2,4,6,...

    def test_compose_wrong_domain(self):
        parent = IndexDomain.standard(10)
        outer = ArraySection(parent, (Triplet(1, 10),))
        with pytest.raises(ValueError):
            outer.compose(ArraySection(IndexDomain.standard(5),
                                       (Triplet(1, 5),)))

    def test_parent_triplet_of_scalar(self):
        s = ArraySection(self.parent, (3, Triplet(1, 8)))
        assert s.parent_triplet(0) == Triplet(3, 3, 1)

    def test_empty_section(self):
        s = ArraySection(self.parent, (Triplet(5, 4), Triplet(1, 8)))
        assert s.is_empty and s.size == 0


class TestStorageAssociation:
    def test_sequence_offset_column_major(self):
        d = IndexDomain.standard(3, 2)
        assert sequence_offset(d, (1, 1)) == 0
        assert sequence_offset(d, (2, 1)) == 1
        assert sequence_offset(d, (1, 2)) == 3

    def test_association_units(self):
        a = StorageAssociation(IndexDomain.standard(4, 2), origin=3)
        assert a.unit_of((1, 1)) == 3
        assert a.unit_of((4, 2)) == 10
        assert a.index_of_unit(5) == (3, 1)
        assert a.extent == 8
        assert list(a.units) == list(range(3, 11))

    def test_sharing(self):
        # two arrangements EQUIVALENCEd at the same origin share units —
        # the §3 sharing rule
        a = StorageAssociation(IndexDomain.standard(8), origin=0)
        b = StorageAssociation(IndexDomain.standard(4), origin=0)
        c = StorageAssociation(IndexDomain.standard(4), origin=8)
        assert a.shares_units_with(b)
        assert list(a.shared_units(b)) == [0, 1, 2, 3]
        assert not a.shares_units_with(c)
