"""Unit tests for communication sets (oracle + analytic) and overlap."""

import numpy as np
import pytest

from repro.core.dataspace import DataSpace
from repro.distributions.base import Collapsed
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.distributions.general_block import GeneralBlock
from repro.engine.assignment import Assignment
from repro.engine.commsets import (
    AnalyticUnsupported,
    CommPiece,
    analytic_comm_sets,
    comm_matrix,
    words_matrix_from_pieces,
)
from repro.engine.expr import ArrayRef
from repro.engine.overlap import detect_shifts, overlap_plan
from repro.errors import MachineError
from repro.fortran.section import full_section
from repro.fortran.triplet import Triplet
from repro.workloads.stencil import jacobi_case, staggered_grid_case


def oracle_vs_analytic(ds, lhs, lsec, rhs, rsec, p):
    dl = ds.distribution_of(lhs)
    dr = ds.distribution_of(rhs)
    sl = ds.section(lhs, *lsec)
    sr = ds.section(rhs, *rsec)
    m1, local, off = comm_matrix(dl, sl, dr, sr, p)
    pieces = analytic_comm_sets(dl, sl, dr, sr)
    m2 = words_matrix_from_pieces(pieces, p)
    return m1, m2, local, off, pieces


class TestOracle:
    def test_identity_no_traffic(self, blocked_pair):
        ds = blocked_pair
        d = ds.distribution_of("A")
        sec = full_section(ds.arrays["A"].domain)
        m, local, off = comm_matrix(d, sec, d, sec, 8)
        assert m.sum() == 0 and off == 0 and local == 64

    def test_conformance_checked(self, blocked_pair):
        ds = blocked_pair
        d = ds.distribution_of("A")
        with pytest.raises(MachineError):
            comm_matrix(d, ds.section("A", Triplet(1, 10)),
                        d, ds.section("B", Triplet(1, 9)), 8)

    def test_words_conserved(self, cyclic_pair):
        ds = cyclic_pair
        dl = ds.distribution_of("A")
        dr = ds.distribution_of("B")
        sec = full_section(ds.arrays["A"].domain)
        m, local, off = comm_matrix(dl, sec, dr, sec, 8)
        assert local + off == 60
        assert m.sum() == off

    def test_replicated_operand_local_when_owner_present(self, ds8):
        from repro.align.ast import Dummy
        from repro.align.spec import (AlignSpec, AxisDummy, BaseExpr,
                                      BaseStar)
        # R replicated over all processors: every read is local
        ds8.declare("D", 16, 8)
        ds8.declare("R", 16)
        ds8.declare("L", 16)
        ds8.distribute("D", [Block(), Block()], to=None)
        ds8.distribute("L", [Block()], to="PR")
        ds8.align(AlignSpec("R", [AxisDummy("I")], "D",
                            [BaseExpr(Dummy("I")), BaseStar()]))
        dl = ds8.distribution_of("L")
        dr = ds8.distribution_of("R")
        sec = full_section(ds8.arrays["L"].domain)
        m, local, off = comm_matrix(dl, sec, dr, sec, 8)
        # D's row-blocks span only 4 target rows; every L owner holds a
        # copy for the rows it needs at least somewhere — count is exact
        assert local + off == 16
        assert m.sum() == off


class TestAnalytic:
    CASES = [
        # (lhs fmt, rhs fmt, lhs section, rhs section, n, p)
        ([Block()], [Cyclic()], (Triplet(1, 60),), (Triplet(1, 60),),
         60, 6),
        ([Cyclic(3)], [Block()], (Triplet(2, 60, 2),),
         (Triplet(1, 59, 2),), 60, 6),
        ([GeneralBlock([10, 25, 40, 41, 55])], [Cyclic(2)],
         (Triplet(5, 58),), (Triplet(3, 56),), 60, 6),
        ([Cyclic(2)], [Cyclic(5)], (Triplet(1, 55, 3),),
         (Triplet(4, 58, 3),), 60, 6),
    ]

    @pytest.mark.parametrize("lfmt,rfmt,lsec,rsec,n,p", CASES)
    def test_matches_oracle_1d(self, lfmt, rfmt, lsec, rsec, n, p):
        ds = DataSpace(p)
        ds.processors("PR", p)
        ds.declare("X", n)
        ds.declare("Y", n)
        ds.distribute("X", lfmt, to="PR")
        ds.distribute("Y", rfmt, to="PR")
        m1, m2, _, off, _ = oracle_vs_analytic(ds, "X", lsec, "Y", rsec, p)
        np.testing.assert_array_equal(m1, m2)

    def test_matches_oracle_2d_scalar_dims(self):
        ds = DataSpace(8)
        ds.processors("PR", 4, 2)
        ds.declare("X", 24, 24)
        ds.declare("Y", 24, 24)
        ds.distribute("X", [Block(), Block()], to="PR")
        ds.distribute("Y", [Cyclic(2), Block()], to="PR")
        m1, m2, _, _, _ = oracle_vs_analytic(
            ds, "X", (Triplet(1, 20), 3), "Y", (5, Triplet(2, 21)), 8)
        np.testing.assert_array_equal(m1, m2)

    def test_collapsed_dim(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("X", 16, 6)
        ds.declare("Y", 16, 6)
        ds.distribute("X", [Block(), Collapsed()], to="PR")
        ds.distribute("Y", [Cyclic(), Collapsed()], to="PR")
        m1, m2, _, _, _ = oracle_vs_analytic(
            ds, "X", (Triplet(1, 16), Triplet(1, 6)),
            "Y", (Triplet(1, 16), Triplet(1, 6)), 4)
        np.testing.assert_array_equal(m1, m2)

    def test_replicated_unsupported(self, ds8):
        from repro.distributions.replicated import ReplicatedDistribution
        from repro.fortran.domain import IndexDomain
        rep = ReplicatedDistribution(IndexDomain.standard(8), range(8))
        ds8.declare("L", 8)
        ds8.distribute("L", [Block()], to="PR")
        sec = full_section(ds8.arrays["L"].domain)
        with pytest.raises(AnalyticUnsupported):
            analytic_comm_sets(ds8.distribution_of("L"), sec, rep, sec)

    def test_piece_words(self):
        piece = CommPiece(0, 1, ((Triplet(1, 5), Triplet(11, 12)),
                                 (Triplet(1, 3),)))
        assert piece.words == 7 * 3
        assert "P0->P1" in str(piece)

    def test_pieces_describe_disjoint_regular_sections(self, cyclic_pair):
        ds = cyclic_pair
        dl = ds.distribution_of("A")
        dr = ds.distribution_of("B")
        sec = full_section(ds.arrays["A"].domain)
        pieces = analytic_comm_sets(dl, sec, dr, sec)
        # pieces with the same (src, dst) must not overlap
        seen = {}
        for p in pieces:
            vals = set()
            for t in p.dim_sets[0]:
                vals |= set(t)
            key = (p.src, p.dst)
            assert not (vals & seen.get(key, set()))
            seen.setdefault(key, set()).update(vals)


class TestOverlap:
    def test_detect_shifts_staggered(self):
        case = staggered_grid_case(16, 2, 2, "direct-block")
        shifts = detect_shifts(case.ds, case.statement)
        assert shifts is not None
        assert set(shifts.values()) == {(-1, 0), (0, 0), (0, -1)}

    def test_detect_shifts_rejects_strided(self, blocked_pair):
        stmt = Assignment(ArrayRef("B", (Triplet(1, 31),)),
                          ArrayRef("A", (Triplet(2, 62, 2),)))
        assert detect_shifts(blocked_pair, stmt) is None

    def test_overlap_plan_jacobi(self):
        case = jacobi_case(32, 2, 2)
        plan = overlap_plan(case.ds, case.statement, 4)
        assert plan is not None
        assert plan.widths_low == (1, 1) and plan.widths_high == (1, 1)
        # halo volume: each of 4 procs exchanges one 16-row/col strip
        # with each adjacent neighbour
        assert plan.total_words > 0
        assert plan.n_messages == 8

    def test_overlap_matches_or_bounds_oracle(self):
        # the halo must cover at least the words the oracle moves
        case = jacobi_case(32, 2, 2)
        from repro.engine.executor import SimulatedExecutor
        from repro.machine.config import MachineConfig
        from repro.machine.simulator import DistributedMachine
        m = DistributedMachine(MachineConfig(4))
        rep = SimulatedExecutor(case.ds, m).execute(case.statement)
        plan = overlap_plan(case.ds, case.statement, 4)
        assert plan.total_words >= rep.total_words
        # and with far fewer messages than naive per-reference transfers
        assert plan.n_messages <= rep.total_messages

    def test_overlap_refuses_cyclic(self):
        case = jacobi_case(32, 2, 2, fmts=[Cyclic(), Cyclic()])
        assert overlap_plan(case.ds, case.statement, 4) is None


class TestOverlapRegressions:
    """The ghost-region accounting bugs fixed alongside the SPMD
    backend: halos wider than the adjacent block, diagonal stencils
    reading corner ghosts, and the staggered-bounds mapping check."""

    def _wide_halo_ds(self):
        # unit 1 owns a single element (index 4): a width-2 halo must
        # keep walking to unit 0 for the second ghost index
        ds = DataSpace(3)
        ds.processors("PR", 3)
        ds.declare("A", 8)
        ds.declare("B", 8)
        for name in ("A", "B"):
            ds.distribute(name, [GeneralBlock([3, 4])], to="PR")
        return ds

    def test_halo_wider_than_neighbour_block(self):
        ds = self._wide_halo_ds()
        stmt = Assignment(ArrayRef("A", (Triplet(3, 8),)),
                          ArrayRef("B", (Triplet(1, 6),)))   # shift -2
        plan = overlap_plan(ds, stmt, 3)
        assert plan is not None
        assert plan.widths_low == (2,)
        # unit 2's ghosts {3, 4}: index 4 from unit 1's 1-element block,
        # index 3 from the next-nearest unit 0 (previously dropped)
        assert plan.words[1, 2] == 1
        assert plan.words[0, 2] == 1
        # unit 1's ghosts {2, 3} both come from unit 0
        assert plan.words[0, 1] == 2
        assert plan.n_messages == 3

    def test_wide_halo_covers_oracle_traffic(self):
        ds = self._wide_halo_ds()
        stmt = Assignment(ArrayRef("A", (Triplet(3, 8),)),
                          ArrayRef("B", (Triplet(1, 6),)))
        plan = overlap_plan(ds, stmt, 3)
        m, _, off = comm_matrix(
            ds.distribution_of("A"), ds.section("A", Triplet(3, 8)),
            ds.distribution_of("B"), ds.section("B", Triplet(1, 6)), 3)
        assert plan.total_words >= int(m.sum())
        # the halo is at least as large as the oracle on every pair
        assert (plan.words >= m).all()

    def _diag_ds(self):
        ds = DataSpace(4)
        ds.processors("PR", 2, 2)
        ds.declare("X", 16, 16)
        ds.declare("Y", 16, 16)
        for name in ("X", "Y"):
            ds.distribute(name, [Block(), Block()], to="PR")
        return ds

    def test_diagonal_shift_planned_with_corner_ghosts(self):
        # shift (-1, -1) also reads corner ghost cells: the plan now
        # ships them via the dense corner-ghost exchange instead of
        # rejecting the statement (the PR 3 stopgap)
        ds = self._diag_ds()
        stmt = Assignment(
            ArrayRef("X", (Triplet(2, 16), Triplet(2, 16))),
            ArrayRef("Y", (Triplet(1, 15), Triplet(1, 15))))
        plan = overlap_plan(ds, stmt, 4)
        assert plan is not None
        assert plan.widths_low == (1, 1)
        assert plan.widths_high == (0, 0)
        # unit 3 (rows 9:16, cols 9:16) reads row 8 / col 8 ghosts from
        # its face neighbours and exactly one corner cell (8, 8) from
        # the diagonal neighbour, unit 0
        assert plan.words[0, 3] == 1
        assert plan.words[1, 3] == 7
        assert plan.words[2, 3] == 7
        # face-only readers get face-only ghosts
        assert plan.words[0, 1] == 7
        assert plan.words[0, 2] == 7
        assert plan.n_messages == 5

    def test_diagonal_stencil_priced_exactly(self):
        from repro.engine.executor import SimulatedExecutor
        from repro.machine.config import MachineConfig
        from repro.machine.simulator import DistributedMachine
        stmt = Assignment(
            ArrayRef("X", (Triplet(2, 16), Triplet(2, 16))),
            ArrayRef("Y", (Triplet(1, 15), Triplet(1, 15))))
        reports = []
        for use_overlap in (False, True):
            machine = DistributedMachine(MachineConfig(4))
            ex = SimulatedExecutor(self._diag_ds(), machine,
                                   use_overlap=use_overlap)
            reports.append(ex.execute(stmt))
        # every block executes its whole owned region here, so the
        # corner-ghost exchange moves exactly the per-reference traffic
        np.testing.assert_array_equal(reports[0].words, reports[1].words)
        # and that traffic includes the corner word a face-only halo
        # would have dropped: the diagonal (upper-left -> lower-right)
        # pair moves exactly the one corner element
        assert reports[1].words[0, 3] == 1
        assert reports[1].strategies.get("*") == "overlap"

    def test_nine_point_stencil_planned(self):
        # the full 9-point star: four faces and four corners, one plan
        ds = self._diag_ds()
        inner = Triplet(2, 15)
        shifts = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1),
                  (1, -1), (1, 0), (1, 1)]
        rhs = ArrayRef("Y", (Triplet(2 + shifts[0][0], 15 + shifts[0][0]),
                             Triplet(2 + shifts[0][1], 15 + shifts[0][1])))
        from repro.engine.expr import BinExpr
        for dr, dc in shifts[1:]:
            rhs = BinExpr("+", rhs, ArrayRef(
                "Y", (Triplet(2 + dr, 15 + dr), Triplet(2 + dc, 15 + dc))))
        stmt = Assignment(ArrayRef("X", (inner, inner)), rhs)
        plan = overlap_plan(ds, stmt, 4)
        assert plan is not None
        assert plan.widths_low == (1, 1)
        assert plan.widths_high == (1, 1)
        # each unit's ghost ring: two 8-cell faces and one corner cell
        # from the diagonal neighbour
        for reader, faces, corner in ((0, (1, 2), 3), (1, (0, 3), 2),
                                      (2, (0, 3), 1), (3, (1, 2), 0)):
            for src in faces:
                assert plan.words[src, reader] == 8
            assert plan.words[corner, reader] == 1
        assert plan.n_messages == 12

    def test_axis_aligned_shift_still_planned(self):
        ds = self._diag_ds()
        stmt = Assignment(
            ArrayRef("X", (Triplet(2, 16), Triplet(1, 15))),
            ArrayRef("Y", (Triplet(1, 15), Triplet(1, 15))))
        assert overlap_plan(ds, stmt, 4) is not None


class TestDistributionsEqualShapes:
    """The docstring/behaviour reconciliation: equality is judged over
    the common *index* region (plus constant boundary extensions), so
    the staggered-grid U(0:N) vs P(1:N) case it cites actually passes."""

    @staticmethod
    def _staggered_pair(variant):
        from repro.distributions.block import BlockVariant
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("U", (0, 16))
        ds.declare("P", (1, 16))
        fmt = Block() if variant == "hpf" else \
            Block(variant=BlockVariant.VIENNA)
        ds.distribute("U", [fmt], to="PR")
        ds.distribute("P", [fmt], to="PR")
        return ds.distribution_of("U"), ds.distribution_of("P")

    def test_staggered_vienna_blocks_equal(self):
        from repro.engine.overlap import distributions_equal_shapes
        du, dp = self._staggered_pair("vienna")
        # U(0:16) and P(1:16) under Vienna blocks agree on 1..16 and U's
        # extra index 0 stays with the first block's owner
        assert distributions_equal_shapes(du, dp)
        assert distributions_equal_shapes(dp, du)

    def test_staggered_hpf_blocks_differ(self):
        from repro.engine.overlap import distributions_equal_shapes
        du, dp = self._staggered_pair("hpf")
        # HPF blocks of 17 vs 16 elements drift apart inside the common
        # region: not the same mapping
        assert not distributions_equal_shapes(du, dp)

    def test_same_domain_same_mapping(self):
        from repro.engine.overlap import distributions_equal_shapes
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 16)
        ds.declare("B", 16)
        ds.distribute("A", [Block()], to="PR")
        ds.distribute("B", [Block()], to="PR")
        assert distributions_equal_shapes(ds.distribution_of("A"),
                                          ds.distribution_of("B"))

    def test_staggered_grid_statement_gets_an_exact_halo(self):
        # the §8.1.1 flagship case the docstring cites end to end: the
        # direct-block strategy now takes the ghost-region path and its
        # halo covers the oracle traffic exactly (width-1 faces)
        from repro.engine.executor import SimulatedExecutor
        from repro.machine.config import MachineConfig
        from repro.machine.simulator import DistributedMachine
        case = staggered_grid_case(16, 2, 2, "direct-block")
        plan = overlap_plan(case.ds, case.statement, 4)
        assert plan is not None
        machine = DistributedMachine(MachineConfig(4))
        report = SimulatedExecutor(case.ds, machine).execute(
            case.statement)
        assert plan.total_words >= report.total_words
        assert plan.n_messages <= report.total_messages
