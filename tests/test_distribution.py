"""Unit tests for multi-dimensional distributions (§4.1) and CONSTRUCT."""

import numpy as np
import pytest

from repro.align.ast import Dummy
from repro.align.function import AlignmentFunction
from repro.align.reduce import reduce_alignment
from repro.align.spec import AlignSpec, AxisDummy, AxisStar, BaseExpr, BaseStar
from repro.distributions.base import Collapsed
from repro.distributions.block import Block
from repro.distributions.construct import construct
from repro.distributions.cyclic import Cyclic
from repro.distributions.distribution import FormatDistribution
from repro.distributions.inquiry import (
    distribution_format,
    distribution_rank,
    distribution_target_name,
    is_replicated,
    number_of_processors,
    owners_of,
)
from repro.distributions.replicated import (
    ReplicatedDistribution,
    ReplicatedFormat,
)
from repro.errors import DistributionError, MappingError
from repro.fortran.domain import IndexDomain
from repro.fortran.triplet import Triplet
from repro.processors.abstract import AbstractProcessors
from repro.processors.arrangement import ProcessorArrangement
from repro.processors.section import ProcessorSection


def make_target(shape, ap_size=None):
    ap = AbstractProcessors(ap_size or int(np.prod(shape)))
    pr = ap.declare(ProcessorArrangement("PR", IndexDomain.standard(*shape)))
    return ap, ProcessorSection(pr)


class TestFormatDistribution:
    def test_rank_rule_format_list_length(self):
        ap, target = make_target((4,))
        with pytest.raises(DistributionError):
            FormatDistribution(IndexDomain.standard(8, 8),
                               [Block()], target, ap)

    def test_rank_rule_colon_reduction(self):
        # §4.1: target rank = distributee rank minus number of colons
        ap, target = make_target((4,))
        dist = FormatDistribution(IndexDomain.standard(8, 8),
                                  [Block(), Collapsed()], target, ap)
        assert dist.owners((1, 1)) == dist.owners((1, 8))

    def test_rank_rule_mismatch(self):
        ap, target = make_target((2, 2))
        with pytest.raises(DistributionError):
            FormatDistribution(IndexDomain.standard(8, 8),
                               [Block(), Collapsed()], target, ap)

    def test_2d_block_block(self):
        ap, target = make_target((2, 2))
        dist = FormatDistribution(IndexDomain.standard(4, 4),
                                  [Block(), Block()], target, ap)
        # quadrants: (1,1)->unit 0, (3,1)->1, (1,3)->2, (3,3)->3
        assert dist.primary_owner((1, 1)) == 0
        assert dist.primary_owner((3, 1)) == 1
        assert dist.primary_owner((1, 3)) == 2
        assert dist.primary_owner((3, 3)) == 3

    def test_owner_map_matches_elementwise(self):
        ap, target = make_target((2, 3))
        dist = FormatDistribution(IndexDomain.of_bounds((0, 7), (1, 9)),
                                  [Cyclic(2), Block()], target, ap)
        pmap = dist.primary_owner_map()
        assert pmap.shape == (8, 9)
        for idx in dist.domain:
            pos = tuple(d.position(v)
                        for v, d in zip(idx, dist.domain.dims))
            assert pmap[pos] == dist.primary_owner(idx)

    def test_owner_map_with_collapsed_dim(self):
        ap, target = make_target((4,))
        dist = FormatDistribution(IndexDomain.standard(8, 5),
                                  [Block(), Collapsed()], target, ap)
        pmap = dist.primary_owner_map()
        # every column identical
        assert (pmap == pmap[:, :1]).all()

    def test_section_target(self):
        ap = AbstractProcessors(16)
        q = ap.declare(ProcessorArrangement("Q",
                                            IndexDomain.standard(16)))
        sec = ProcessorSection(q, (Triplet(1, 8, 2),))
        dist = FormatDistribution(IndexDomain.standard(100),
                                  [Cyclic()], sec, ap)
        assert set(dist.processors()) == {0, 2, 4, 6}

    def test_local_shape_and_extent(self):
        ap, target = make_target((2, 2))
        dist = FormatDistribution(IndexDomain.standard(10, 6),
                                  [Block(), Block()], target, ap)
        assert dist.local_shape(0) == (5, 3)
        assert dist.local_extent(0) == 15
        assert sum(dist.local_extent(u) for u in range(4)) == 60

    def test_owned_triplets(self):
        ap, target = make_target((2, 2))
        dist = FormatDistribution(IndexDomain.standard(10, 6),
                                  [Block(), Cyclic()], target, ap)
        row_sets, col_sets = dist.owned_triplets(3)
        assert row_sets == (Triplet(6, 10, 1),)
        assert col_sets == (Triplet(2, 6, 2),)

    def test_processors_excludes_empty(self):
        # HPF BLOCK can leave trailing processors empty
        ap, target = make_target((4,))
        dist = FormatDistribution(IndexDomain.standard(9),
                                  [Block()], target, ap)
        assert dist.processors() == (0, 1, 2)

    def test_totality(self):
        ap, target = make_target((2, 2))
        dist = FormatDistribution(IndexDomain.standard(7, 5),
                                  [Block(), Cyclic(2)], target, ap)
        for idx in dist.domain:
            assert len(dist.owners(idx)) >= 1

    def test_replicated_format_dim(self):
        ap, target = make_target((2, 2))
        dist = FormatDistribution(IndexDomain.standard(6, 6),
                                  [Block(), ReplicatedFormat()],
                                  target, ap)
        assert dist.is_replicated
        assert len(dist.owners((1, 1))) == 2
        assert dist.owners((1, 1)) == dist.owners((1, 6))

    def test_same_mapping(self):
        ap, target = make_target((4,))
        a = FormatDistribution(IndexDomain.standard(16), [Block()],
                               target, ap)
        b = FormatDistribution(IndexDomain.standard(16), [Cyclic(4)],
                               target, ap)
        c = FormatDistribution(IndexDomain.standard(16), [Cyclic()],
                               target, ap)
        assert a.same_mapping(b)       # CYCLIC(4) of 16 == BLOCK of 16
        assert not a.same_mapping(c)

    def test_rank0_domain_distribution(self):
        rep = ReplicatedDistribution(IndexDomain.scalar(), range(4))
        assert rep.owners(()) == frozenset({0, 1, 2, 3})
        assert rep.is_replicated


class TestConstruct:
    def make_aligned(self, n=16, np_=4):
        ap, target = make_target((np_,))
        base_dom = IndexDomain.standard(2 * n)
        base = FormatDistribution(base_dom, [Block()], target, ap)
        spec = AlignSpec("X", [AxisDummy("I")], "B",
                         [BaseExpr(Dummy("I") * 2)])
        fn = AlignmentFunction(reduce_alignment(
            spec, IndexDomain.standard(n), base_dom))
        return fn, base

    def test_collocation_guarantee(self):
        # Definition 4: A(i) resides where B(j) does for all j in alpha(i)
        fn, base = self.make_aligned()
        dist = construct(fn, base)
        for i in range(1, 17):
            assert dist.owners((i,)) == base.owners((2 * i,))

    def test_owner_map_vectorized_path(self):
        fn, base = self.make_aligned(n=64, np_=8)
        dist = construct(fn, base)
        pmap = dist.primary_owner_map()
        for i in range(1, 65, 7):
            assert pmap[i - 1] == dist.primary_owner((i,))

    def test_domain_mismatch_rejected(self):
        fn, _ = self.make_aligned()
        ap, target = make_target((4,))
        wrong = FormatDistribution(IndexDomain.standard(99), [Block()],
                                   target, ap)
        with pytest.raises(MappingError):
            construct(fn, wrong)

    def test_replicating_alignment_union(self):
        # ALIGN A(I) WITH D(I, *) over a (BLOCK, BLOCK) D: owners of A(i)
        # are the whole row of processors
        ap, target = make_target((2, 2))
        d_dom = IndexDomain.standard(8, 8)
        d = FormatDistribution(d_dom, [Block(), Block()], target, ap)
        spec = AlignSpec("A", [AxisDummy("I")], "D",
                         [BaseExpr(Dummy("I")), BaseStar()])
        fn = AlignmentFunction(reduce_alignment(
            spec, IndexDomain.standard(8), d_dom))
        dist = construct(fn, d)
        assert dist.is_replicated
        assert dist.owners((1,)) == frozenset({0, 2})   # row 1, both cols
        assert dist.owners((8,)) == frozenset({1, 3})

    def test_collapse_alignment(self):
        # ALIGN B(:, *) WITH E(:) — paper §5.1 second example
        ap, target = make_target((4,))
        e_dom = IndexDomain.standard(8)
        e = FormatDistribution(e_dom, [Cyclic()], target, ap)
        spec = AlignSpec("B", [AxisDummy("I"), AxisStar()], "E",
                         [BaseExpr(Dummy("I"))])
        fn = AlignmentFunction(reduce_alignment(
            spec, IndexDomain.standard(8, 5), e_dom))
        dist = construct(fn, e)
        for j in range(1, 6):
            assert dist.owners((3, j)) == e.owners((3,))
        assert not dist.is_replicated


class TestInquiry:
    def test_inquiry_functions(self):
        ap, target = make_target((4,))
        dist = FormatDistribution(IndexDomain.standard(12, 3),
                                  [Cyclic(3), Collapsed()], target, ap)
        assert distribution_rank(dist) == 2
        assert distribution_format(dist, 0) == "CYCLIC(3)"
        assert distribution_format(dist, 1) == ":"
        assert distribution_target_name(dist) == "PR"
        assert number_of_processors(dist) == 4
        assert owners_of(dist, (1, 1)) == (0,)
        assert not is_replicated(dist)

    def test_inquiry_on_derived(self):
        rep = ReplicatedDistribution(IndexDomain.standard(4), [0, 1])
        assert distribution_format(rep, 0) == "DERIVED"
        assert distribution_target_name(rep) is None
        assert is_replicated(rep)
