"""The lazy Session/DistributedArray front door: golden lowering tests
(fluent API -> IR), NumPy-flavored subscript conversion, directive
ordering, adaptive-window sizing and the run/rerun lifecycle."""

import numpy as np
import pytest

from repro.api import Session
from repro.core.dataspace import DataSpace
from repro.distributions.block import Block
from repro.distributions.cyclic import Cyclic
from repro.engine.assignment import Assignment
from repro.engine.expr import ArrayRef
from repro.engine.ir import (
    AllocateNode,
    DeallocateNode,
    LoopNode,
    RealignNode,
    RedistributeNode,
    StatementNode,
)
from repro.engine.passes import adaptive_window
from repro.errors import DirectiveError
from repro.fortran.triplet import Triplet


# ----------------------------------------------------------------------
# Subscript conversion: NumPy-flavored -> Fortran triplets
# ----------------------------------------------------------------------
class TestSlicing:
    def _array(self, *bounds):
        s = Session(4, machine=False)
        s.processors("PR", 4)
        return s.array("A", *bounds)

    def test_full_slice(self):
        a = self._array(10)
        assert a[:].subscripts == (Triplet(1, 10, 1),)

    def test_open_slices(self):
        a = self._array(10)
        assert a[2:].subscripts == (Triplet(3, 10, 1),)
        assert a[:-2].subscripts == (Triplet(1, 8, 1),)
        assert a[1:-1].subscripts == (Triplet(2, 9, 1),)

    def test_strided_slice(self):
        a = self._array(64)
        assert a[1::2].subscripts == (Triplet(2, 64, 2),)
        # the last element is the last *reached* position
        assert a[0:5:2].subscripts == (Triplet(1, 5, 2),)

    def test_nonunit_lower_bound(self):
        # U(0:N, 1:N): positions are zero-based into each dimension
        a = self._array((0, 8), (1, 8))
        assert a[:-1, :].subscripts == (Triplet(0, 7, 1), Triplet(1, 8, 1))
        assert a[1:, 1:].subscripts == (Triplet(1, 8, 1), Triplet(2, 8, 1))

    def test_integer_and_negative_index(self):
        a = self._array((0, 8))
        assert a[0].subscripts == (0,)
        assert a[-1].subscripts == (8,)

    def test_missing_trailing_dims_are_full(self):
        a = self._array(6, 7)
        assert a[2:].subscripts == (Triplet(3, 6, 1), Triplet(1, 7, 1))

    def test_errors(self):
        a = self._array(10)
        with pytest.raises(DirectiveError):
            a[::-1]
        with pytest.raises(DirectiveError):
            a[4:2]
        with pytest.raises(DirectiveError):
            a[10]
        with pytest.raises(DirectiveError):
            a[1, 2]


# ----------------------------------------------------------------------
# Golden lowering: the fluent API builds exactly the expected IR
# ----------------------------------------------------------------------
class TestLowering:
    def test_statement_recording_is_lazy(self):
        s = Session(4, machine=False)
        s.processors("PR", 4)
        a = s.array("A", 8).distribute(Block(), to="PR")
        b = s.array("B", 8).distribute(Block(), to="PR")
        a.data[:] = 1.0
        b[:] = a[:] + 1.0
        assert np.all(b.data == 0.0), "recording must not execute"
        graph = s.lower()
        assert len(graph) == 1
        node = graph.nodes[0]
        assert isinstance(node, StatementNode)
        assert node.stmt == Assignment(
            ArrayRef("B", (Triplet(1, 8, 1),)),
            ArrayRef("A", (Triplet(1, 8, 1),)) + 1.0)
        s.run()
        np.testing.assert_array_equal(b.data, np.full(8, 2.0))

    def test_loop_nesting(self):
        s = Session(4, machine=False)
        s.processors("PR", 4)
        a = s.array("A", 8).distribute(Block(), to="PR")
        b = s.array("B", 8).distribute(Block(), to="PR")
        b[:] = a[:]                      # before
        with s.loop(3):
            a[:] = b[:]
            with s.loop(2):
                b[:] = a[:]
        b[:] = a[:]                      # after
        g = s.lower()
        kinds = [type(n).__name__ for n in g.nodes]
        assert kinds == ["StatementNode", "LoopNode", "StatementNode"]
        outer = g.nodes[1]
        assert outer.count == 3
        assert [type(n).__name__ for n in outer.body] == \
            ["StatementNode", "LoopNode"]
        inner = outer.body[1]
        assert isinstance(inner, LoopNode) and inner.count == 2
        # dynamic instances: 1 + 3*(1 + 2) + 1
        assert len(list(g.walk())) == 11

    def test_directive_ordering(self):
        """Eager spec directives surround lazy execution nodes in the
        order written; the graph records only the execution part."""
        s = Session(4, machine=False)
        pr = s.processors("PR", 4)
        a = s.array("A", 12, dynamic=True).distribute(Block(), to=pr)
        c = s.array("C", allocatable=True, rank=1, dynamic=True)
        b = s.array("B", 12).align(a, lambda I: I)   # eager: ALIGN
        c.allocate(12)                               # lazy: ALLOCATE
        b[:] = a[:]                                  # lazy: statement
        a.redistribute(Cyclic(), to=pr)              # lazy: REDISTRIBUTE
        c.realign(a, lambda I: I)                    # lazy: REALIGN
        c.deallocate()                               # lazy: DEALLOCATE
        g = s.lower()
        assert [type(n) for n in g.nodes] == [
            AllocateNode, StatementNode, RedistributeNode, RealignNode,
            DeallocateNode]
        # the eager directives already took effect
        assert s.ds.forest_snapshot() == {"A": frozenset({"B"})}
        s.run()
        assert s.ds.distribution_source("A") == "explicit"
        assert not s.ds.arrays["C"].is_allocated

    def test_pending_allocate_resolves_shapes(self):
        """A recorded (unexecuted) ALLOCATE must already shape later
        recorded statements — the shadow-domain path."""
        s = Session(2, machine=False)
        s.processors("PR", 2)
        a = s.array("A", 6).distribute(Block(), to="PR")
        c = s.array("C", allocatable=True, rank=1)
        c.allocate(6)
        c[1:-1] = a[1:-1]
        with pytest.raises(DirectiveError):
            _ = c.data          # still unallocated for real
        s.run()
        assert s.ds.arrays["C"].is_allocated
        assert c.data.shape == (6,)

    def test_unclosed_loop_refuses_to_run(self):
        s = Session(2, machine=False)
        s.processors("PR", 2)
        s.array("A", 4)
        with pytest.raises(DirectiveError):
            with s.loop(2):
                s.run()              # run() inside the open loop

    def test_failed_loop_body_is_discarded(self):
        """A with-block that raises mid-recording must not seal the
        half-recorded body into the program."""
        s = Session(2, machine=False)
        s.processors("PR", 2)
        a = s.array("A", 8).distribute(Block(), to="PR")
        b = s.array("B", 8).distribute(Block(), to="PR")
        with pytest.raises(DirectiveError):
            with s.loop(5):
                b[:] = a[:] + 1.0
                b[:] = a[99]            # out of range at record time
        assert len(s.lower()) == 0, "phantom half-loop recorded"
        # a corrected re-record runs exactly its own statements
        with s.loop(5):
            b[:] = a[:] + 1.0
        s.run()
        assert len(list(s.builder.peek().walk())) == 0
        np.testing.assert_array_equal(b.data, np.ones(8))


# ----------------------------------------------------------------------
# Adaptive fusion window
# ----------------------------------------------------------------------
class TestAdaptiveWindow:
    def _graph(self, statements):
        from repro.engine.ir import ProgramGraph
        g = ProgramGraph()
        for stmt in statements:
            g.assign(stmt)
        return g

    def test_empty_graph_falls_back(self):
        from repro.engine.ir import ProgramGraph
        from repro.engine.passes import _WINDOW_LIMIT
        assert adaptive_window(ProgramGraph()) == _WINDOW_LIMIT

    def test_dependent_write_bounds_the_run(self):
        # A = B(shift) + B(shift); B = A  -> run of 2+1 deposits, then
        # the write of B (read by the buffer) flushes
        t = Triplet(1, 8)
        s1 = Assignment(ArrayRef("A", (t,)),
                        ArrayRef("B", (t,)) + ArrayRef("B", (t,)))
        s2 = Assignment(ArrayRef("B", (t,)), ArrayRef("A", (t,)))
        g = self._graph([s1, s2] * 10)
        # each round: 2 (s1 refs) + 1 (s2 ref) = 3, clamped up to 4
        assert adaptive_window(g) == 4

    def test_long_independent_run_widens_the_window(self):
        t = Triplet(1, 8)
        stmts = [Assignment(ArrayRef(f"X{k}", (t,)),
                            ArrayRef("B", (t,)) + ArrayRef("C", (t,)))
                 for k in range(12)]
        assert adaptive_window(self._graph(stmts)) == 24

    def test_clamped_above(self):
        t = Triplet(1, 8)
        stmts = [Assignment(ArrayRef(f"X{k}", (t,)),
                            ArrayRef("B", (t,)) + ArrayRef("C", (t,)))
                 for k in range(100)]
        assert adaptive_window(self._graph(stmts)) == 64

    def test_session_opt_window_override(self):
        s = Session(4, opt=2, opt_window=7)
        s.processors("PR", 4)
        a = s.array("A", 16).distribute(Block(), to="PR")
        b = s.array("B", 16).distribute(Cyclic(), to="PR")
        b[:] = a[:]
        s.run()
        assert s._runner.accountant.window == 7

    def test_session_default_window_is_adaptive(self):
        s = Session(4, opt=2)
        s.processors("PR", 4)
        a = s.array("A", 16).distribute(Block(), to="PR")
        b = s.array("B", 16).distribute(Cyclic(), to="PR")
        with s.loop(3):
            b[:] = a[:]
        s.run()
        # sized from the lowered graph (3 independent deposits, clamped
        # up to the floor), not left at the fixed legacy bound
        assert s._runner.accountant.window == 4

    def test_window_flush_order_is_preserved(self):
        """Golden: with a tiny pinned window the fused deposit reaches
        the ledger before the next statement's traffic."""
        from repro.machine.config import MachineConfig
        s = Session(4, opt=2, opt_window=2,
                    machine=MachineConfig(4))
        s.processors("PR", 4)
        a = s.array("A", 32).distribute(Block(), to="PR")
        b = s.array("B", 32).distribute(Block(), to="PR")
        c = s.array("C", 32).distribute(Block(), to="PR")
        # two shift deposits fill the window; distinct source arrays so
        # subset subsumption cannot elide the second (this test pins
        # coalescing's flush order)
        a[2:] = b[:-2] + c[1:-1]
        a[:2] = b[:2]                # same-mapping: no traffic
        result = s.run()
        fused = [m for m in s.machine.ledger
                 if m.tag.startswith("fused")]
        assert fused, "window limit never flushed"
        assert result.savings["fused_windows"] >= 1


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_run_returns_full_reports(self):
        s = Session(4, opt=0)
        s.processors("PR", 4)
        a = s.array("A", 16).distribute(Block(), to="PR")
        b = s.array("B", 16).distribute(Cyclic(), to="PR")
        b[:] = a[:]
        result = s.run()
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.total_words > 0
        assert report.total_words == s.machine.stats.total_words
        assert s.reports == result.reports

    def test_incremental_runs_accumulate(self):
        s = Session(4)
        s.processors("PR", 4)
        a = s.array("A", 16).distribute(Block(), to="PR")
        b = s.array("B", 16).distribute(Cyclic(), to="PR")
        b[:] = a[:]
        s.run()
        b[:] = a[:]
        s.run()
        assert len(s.reports) == 2
        # the second run reuses the compiled schedule
        assert s.ds.schedule_cache.hits >= 1

    def test_machine_false_is_sequential_only(self):
        s = Session(4, machine=False)
        s.processors("PR", 4)
        a = s.array("A", 8).distribute(Block(), to="PR")
        a.data[:] = 3.0
        b = s.array("B", 8).distribute(Block(), to="PR")
        b[:] = a[:] * 2.0
        assert s.run() is None
        np.testing.assert_array_equal(b.data, np.full(8, 6.0))
        assert s.stats is None

    def test_adopting_an_existing_dataspace(self):
        ds = DataSpace(4)
        ds.processors("PR", 4)
        ds.declare("A", 8)
        ds.distribute("A", [Block()], to="PR")
        s = Session(ds=ds)
        b = s.array("B", 8).distribute(Block(), to="PR")
        b[:] = 5.0
        s.run()
        np.testing.assert_array_equal(ds.arrays["B"].data, np.full(8, 5.0))

    def test_scalar_rhs(self):
        s = Session(2, machine=False)
        s.processors("PR", 2)
        a = s.array("A", 4)
        a[:] = 2
        s.run()
        np.testing.assert_array_equal(a.data, np.full(4, 2.0))

    def test_whole_array_arithmetic(self):
        s = Session(2, machine=False)
        s.processors("PR", 2)
        a = s.array("A", 4)
        b = s.array("B", 4)
        a.data[:] = 1.0
        b[:] = a + a
        s.run()
        np.testing.assert_array_equal(b.data, np.full(4, 2.0))

    def test_context_manager_closes_backend(self):
        with Session(2, backend="spmd") as s:
            s.processors("PR", 2)
            a = s.array("A", 8).distribute(Block(), to="PR")
            b = s.array("B", 8).distribute(Cyclic(), to="PR")
            b[:] = a[:]
            result = s.run()
            assert result.reports[0].total_words > 0
