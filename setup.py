"""Setuptools shim so ``pip install -e .`` works on environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` available).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
